"""Reservoir-sampling quantile summary.

The simplest randomized baseline: keep a uniform sample of ``m`` items
(Vitter's reservoir algorithm) and answer quantile queries from the sample.
Standard concentration gives rank error O(n * sqrt(log(1/delta) / m)), so
``m = O(log(1/delta) / eps^2)`` suffices for an ``eps n`` guarantee — far
more than KLL needs, which is why it only serves as a baseline in T10.

Seedable, hence deterministic once seeded, like :class:`~repro.summaries.KLL`.
"""

from __future__ import annotations

import math
import random

from repro.errors import EmptySummaryError
from repro.model.rankindex import RankIndex, build_index
from repro.model.registry import register_descriptor
from repro.model.summary import QuantileSummary, exact_fraction
from repro.persistence import decode_key, encode_key, epsilon_of
from repro.universe.item import Item
from repro.universe.universe import Universe


def reservoir_size_for(epsilon: float, delta: float = 0.01) -> int:
    """Sample size giving rank error ``eps n`` with probability ``1 - delta``."""
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return max(1, math.ceil(2 * math.log(2 / delta) / (epsilon * epsilon)))


class ReservoirSampling(QuantileSummary):
    """Uniform reservoir sample answering quantile and rank queries."""

    name = "sampling"
    is_deterministic = False

    def __init__(
        self,
        epsilon: float,
        m: int | None = None,
        seed: int | None = 0,
        delta: float = 0.01,
    ) -> None:
        super().__init__(float(epsilon))
        self.m = m if m is not None else reservoir_size_for(float(epsilon), delta)
        self.seed = seed
        self._rng = random.Random(seed)
        self._reservoir: list[Item] = []

    def _insert(self, item: Item) -> None:
        if len(self._reservoir) < self.m:
            self._reservoir.append(item)
            return
        slot = self._rng.randrange(self._n + 1)
        if slot < self.m:
            self._reservoir[slot] = item

    def _process_batch(self, batch: list[Item]) -> None:
        """Bulk fill, then the per-item replacement loop without dispatch.

        The fill phase draws nothing; afterwards exactly one
        ``randrange(n + 1)`` per item reproduces the sequential RNG stream.
        The reservoir never shrinks, so its final size is the max observed.
        """
        fill = min(self.m - len(self._reservoir), len(batch))
        if fill > 0:
            self._reservoir.extend(batch[:fill])
            self._n += fill
        reservoir = self._reservoir
        m = self.m
        rng = self._rng
        n = self._n
        for item in batch[max(fill, 0) :]:
            slot = rng.randrange(n + 1)
            if slot < m:
                reservoir[slot] = item
            n += 1
        self._n = n
        size = len(reservoir)
        if size > self._max_item_count:
            self._max_item_count = size

    def _query(self, phi: float) -> Item:
        if not self._reservoir:
            raise EmptySummaryError("no items stored")
        ordered = sorted(self._reservoir)
        target = max(1, min(len(ordered), math.ceil(exact_fraction(phi) * len(ordered))))
        return ordered[target - 1]

    def estimate_rank(self, item: Item) -> int:
        if self._n == 0:
            raise EmptySummaryError("cannot estimate rank on an empty summary")
        if not self._reservoir:
            return 0
        below = sum(1 for stored in self._reservoir if stored <= item)
        return round(below * self._n / len(self._reservoir))

    def item_array(self) -> list[Item]:
        return sorted(self._reservoir)

    def _item_count(self) -> int:
        return len(self._reservoir)

    def fingerprint(self) -> tuple:
        return (self.name, self._n, self.m, self.seed, len(self._reservoir))


def _compile_sampling_index(summary: ReservoirSampling) -> RankIndex:
    """Freeze the sorted reservoir.

    Quantile targets live in the reservoir-size domain (the sample stands in
    for the stream) and ranks rescale the below-count to the stream length,
    as the sequential paths do.
    """
    ordered = sorted(summary._reservoir)
    return build_index(
        items=ordered,
        rmin=list(range(1, len(ordered) + 1)),
        n=summary.n,
        total_weight=len(ordered),
        q_domain="weight",
        q_round="ceil",
        rank_rule="scaled",
    )


def _encode_sampling(summary: ReservoirSampling) -> dict:
    # The reservoir's *list order* matters (replacement indexes into it), so
    # items are stored in slot order, not sorted.
    return {
        "m": summary.m,
        "seed": summary.seed,
        "reservoir": [encode_key(item) for item in summary._reservoir],
    }


def _decode_sampling(payload: dict, universe: Universe) -> ReservoirSampling:
    summary = ReservoirSampling(
        epsilon_of(payload), m=int(payload["m"]), seed=payload["seed"]
    )
    summary._reservoir = [
        universe.item(decode_key(key)) for key in payload["reservoir"]
    ]
    # One randrange(j + 1) was drawn per insert after the reservoir filled
    # (at j = m, m+1, ..., n-1); replaying the same bounds reproduces the
    # RNG state exactly, so the restored summary continues like the original.
    for j in range(summary.m, int(payload["n"])):
        summary._rng.randrange(j + 1)
    return summary


register_descriptor(
    "sampling",
    ReservoirSampling,
    encode=_encode_sampling,
    decode=_decode_sampling,
    compile_index=_compile_sampling_index,
)
