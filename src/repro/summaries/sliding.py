"""Sliding-window quantiles on top of mergeable GK blocks.

The paper's related work (Section 1.2, via the Greenwald-Khanna survey [7])
mentions the sliding-window model: answer quantile queries over the most
recent ``window`` items only.  This module implements the classic
block-decomposition approach:

* the window is covered by at most ``blocks`` consecutive *blocks*, each
  summarised by its own GK summary at a reduced epsilon;
* when a block fills, a new one starts; blocks that slide fully out of the
  window are dropped;
* a query merges the live blocks with :func:`~repro.summaries.merge_gk` and
  queries the merged summary.

Error analysis: GK merging preserves the max of the input epsilons (see
:func:`~repro.summaries.merge_gk`), so each block runs at ``eps / 2``; the
oldest block may straddle the window boundary, contributing up to
``window / blocks`` extra rank uncertainty.  The overall guarantee is
therefore ``(eps + 1 / blocks) * window`` rank error, which the tests
measure; increase ``blocks`` to push it towards ``eps * window``.

This is deliberately a *model extension*, not part of the paper's lower
bound (which is for the full-stream model); it exists because a library a
practitioner would adopt needs it, and because it exercises the merge
machinery end to end.
"""

from __future__ import annotations


from repro.errors import EmptySummaryError
from repro.model.registry import register_descriptor
from repro.model.summary import QuantileSummary, exact_fraction
from repro.persistence import dump, epsilon_of, load
from repro.summaries.gk import GreenwaldKhanna
from repro.summaries.merging import merge_gk
from repro.universe.item import Item
from repro.universe.universe import Universe


class SlidingWindowQuantiles(QuantileSummary):
    """Approximate quantiles over the last ``window`` stream items.

    Parameters
    ----------
    epsilon:
        Target rank-error fraction *of the window*.
    window:
        Number of most-recent items queries refer to.
    blocks:
        Number of blocks covering the window (default 8).  The effective
        guarantee is ``(epsilon + 1/blocks) * window`` rank error; increase
        ``blocks`` to tighten it at the cost of per-item work.
    """

    name = "sliding-gk"

    def __init__(self, epsilon: float, window: int = 10_000, blocks: int = 8) -> None:
        super().__init__(float(epsilon))
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        if blocks < 2:
            raise ValueError(f"blocks must be at least 2, got {blocks}")
        self.window = window
        self.blocks = blocks
        self._block_size = max(1, window // blocks)
        self._block_eps = exact_fraction(epsilon) / 2
        # (start position, summary) per live block; positions are 0-based.
        self._live: list[tuple[int, GreenwaldKhanna]] = []

    # -- processing --------------------------------------------------------------

    def _insert(self, item: Item) -> None:
        position = self._n  # 0-based arrival index of this item
        if not self._live or position % self._block_size == 0:
            self._live.append((position, GreenwaldKhanna(self._block_eps)))
        self._live[-1][1].process(item)
        # Drop blocks that ended before the window's left edge.
        window_start = position + 1 - self.window
        self._live = [
            (start, summary)
            for start, summary in self._live
            if start + summary.n > window_start
        ]

    @property
    def effective_epsilon(self) -> float:
        """The guarantee actually provided: epsilon + 1/blocks."""
        return self.epsilon + 1 / self.blocks

    def window_size(self) -> int:
        """Number of items currently inside the window."""
        return min(self._n, self.window)

    # -- queries -----------------------------------------------------------------

    def _merged(self) -> GreenwaldKhanna:
        if not self._live:
            raise EmptySummaryError("no items stored")
        merged = self._live[0][1]
        for _, block in self._live[1:]:
            merged = merge_gk(merged, block)
        return merged

    def _query(self, phi: float) -> Item:
        # The merged summary covers slightly more than the window (the
        # oldest block may straddle the boundary); query it directly — the
        # straddle is accounted for in effective_epsilon.
        return self._merged().query(phi)

    def estimate_rank(self, item: Item) -> int:
        if self._n == 0:
            raise EmptySummaryError("cannot estimate rank on an empty summary")
        merged = self._merged()
        overshoot = merged.n - self.window_size()
        return max(0, merged.estimate_rank(item) - overshoot)

    # -- the model's memory --------------------------------------------------------

    def item_array(self) -> list[Item]:
        items = [item for _, block in self._live for item in block.item_array()]
        items.sort()
        return items

    def _item_count(self) -> int:
        return sum(block._item_count() for _, block in self._live)

    def fingerprint(self) -> tuple:
        return (
            self.name,
            self._n,
            self.window,
            self.blocks,
            tuple((start, block.fingerprint()) for start, block in self._live),
        )


def _encode_sliding(summary: SlidingWindowQuantiles) -> dict:
    return {
        "window": summary.window,
        "blocks": summary.blocks,
        "live": [[start, dump(block)] for start, block in summary._live],
    }


def _decode_sliding(payload: dict, universe: Universe) -> SlidingWindowQuantiles:
    summary = SlidingWindowQuantiles(
        epsilon_of(payload),
        window=int(payload["window"]),
        blocks=int(payload["blocks"]),
    )
    summary._live = [
        (int(start), load(block, universe)) for start, block in payload["live"]
    ]
    return summary


# Per-item block rotation and window eviction make every insert depend on the
# exact arrival position, so sliding windows keep the sequential fallback
# (no batch kernel).
register_descriptor(
    "sliding-gk",
    SlidingWindowQuantiles,
    encode=_encode_sliding,
    decode=_decode_sliding,
)
