"""Turnstile quantiles: dyadic decomposition over Count-Min sketches.

The paper's related work (Section 1.2): quantile tracking is possible even
when items *depart* (the turnstile model), but "any algorithm for turnstile
streams inherently relies on the bounded size of the universe".  This is
that algorithm (Cormode-Muthukrishnan's dyadic construction, the one Luo et
al. [13] evaluate): one frequency sketch per dyadic level of the universe
[0, 2^L); a rank query sums O(L) sketch estimates along a canonical dyadic
cover, and a quantile query binary-searches the universe using rank queries.

Properties worth contrasting with the paper's model:

* **Not comparison-based** — it hashes item *values*, requires the bounded
  universe, and returns values that may never have appeared.  Like q-digest
  it therefore escapes Theorem 2.2 (space is O((1/eps) log^2 |U|)-ish,
  independent of N).
* **Randomized** — estimates hold with probability 1 - delta per query.
* **Fully turnstile** — :meth:`delete` is exact bookkeeping, not a heuristic.
"""

from __future__ import annotations

import math
from collections import Counter
from fractions import Fraction

from repro.errors import EmptySummaryError
from repro.model.registry import register_descriptor
from repro.model.summary import QuantileSummary
from repro.persistence import epsilon_of
from repro.sketches.countmin import CountMinSketch
from repro.universe.item import Item, key_of
from repro.universe.universe import Universe


class TurnstileQuantiles(QuantileSummary):
    """Dyadic Count-Min quantiles over the universe [0, 2**universe_bits)."""

    name = "turnstile"
    is_comparison_based = False
    is_deterministic = False  # hash-seeded; fixed seed makes runs reproducible

    def __init__(
        self,
        epsilon: float,
        universe_bits: int = 16,
        delta: float = 0.01,
        seed: int = 0,
        universe: Universe | None = None,
    ) -> None:
        super().__init__(float(epsilon))
        if universe_bits < 1:
            raise ValueError(f"universe_bits must be positive, got {universe_bits}")
        self.universe_bits = universe_bits
        self._universe = universe if universe is not None else Universe()
        # Each level absorbs eps / L of the rank-error budget.
        per_level_eps = float(epsilon) / universe_bits
        self._levels = [
            CountMinSketch.for_guarantee(per_level_eps, delta, seed=seed + level)
            for level in range(universe_bits + 1)
        ]

    # -- helpers -----------------------------------------------------------------

    def _value_of(self, item: Item) -> int:
        key = key_of(item)
        if not isinstance(key, Fraction) or key.denominator != 1:
            raise ValueError("turnstile quantiles require integer-valued items")
        value = int(key)
        if not 0 <= value < (1 << self.universe_bits):
            raise ValueError(
                f"value {value} outside universe [0, 2^{self.universe_bits})"
            )
        return value

    def _update(self, value: int, delta: int) -> None:
        # Level 0 holds single values; level l holds blocks of size 2^l.
        for level, sketch in enumerate(self._levels):
            sketch.update(value >> level, delta)

    # -- stream operations ---------------------------------------------------------

    def _insert(self, item: Item) -> None:
        self._update(self._value_of(item), +1)

    def _process_batch(self, batch: list[Item]) -> None:
        """Aggregate duplicate values, then one sketch update per distinct.

        Count-Min updates are additive, so ``update(v, c)`` equals ``c``
        unit updates exactly.  The whole batch is validated before any
        counter changes.  The item array stays empty, so
        ``max_item_count`` is untouched.
        """
        values = [self._value_of(item) for item in batch]
        counts = Counter(values)
        for level, sketch in enumerate(self._levels):
            for value, occurrences in counts.items():
                sketch.update(value >> level, occurrences)
        self._n += len(batch)

    def delete(self, item: Item) -> None:
        """Remove one occurrence of ``item`` (exact turnstile bookkeeping)."""
        if self._n == 0:
            raise ValueError("cannot delete from an empty summary")
        self._update(self._value_of(item), -1)
        self._n -= 1

    # -- rank machinery ----------------------------------------------------------------

    def rank_of_value(self, value: int) -> int:
        """Estimated number of stream items <= ``value``.

        Sums the canonical dyadic cover of [0, value]: walk levels from the
        top; whenever the current block's left half is fully below the
        target, add its estimate and descend right.
        """
        if value < 0:
            return 0
        value = min(value, (1 << self.universe_bits) - 1)
        rank = 0
        # Positions [0, value] decompose into at most one block per level.
        remaining = value + 1  # count of universe slots to cover
        start = 0
        for level in range(self.universe_bits, -1, -1):
            block = 1 << level
            if remaining >= block:
                rank += self._levels[level].estimate(start >> level)
                start += block
                remaining -= block
        return min(rank, self._n)

    def estimate_rank(self, item: Item) -> int:
        if self._n == 0:
            raise EmptySummaryError("cannot estimate rank on an empty summary")
        return self.rank_of_value(self._value_of(item))

    def _query(self, phi: float) -> Item:
        target = max(1, min(self._n, math.ceil(Fraction(phi) * self._n)))
        lo, hi = 0, (1 << self.universe_bits) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank_of_value(mid) >= target:
                hi = mid
            else:
                lo = mid + 1
        return self._universe.item(lo)

    # -- the model's memory -----------------------------------------------------------

    def item_array(self) -> list[Item]:
        """Sketches store counters, not items; the item array is empty."""
        return []

    def _item_count(self) -> int:
        return 0

    def memory_counters(self) -> int:
        """Total counters across all dyadic levels — the space measure."""
        return sum(sketch.memory_counters() for sketch in self._levels)

    def fingerprint(self) -> tuple:
        return (
            self.name,
            self._n,
            self.universe_bits,
            tuple(sketch.total for sketch in self._levels),
        )


def _encode_turnstile(summary: TurnstileQuantiles) -> dict:
    return {
        "universe_bits": summary.universe_bits,
        "levels": [
            {
                "width": sketch.width,
                "depth": sketch.depth,
                "seed": sketch.seed,
                "total": sketch.total,
                "rows": [list(row) for row in sketch._rows],
            }
            for sketch in summary._levels
        ],
    }


def _decode_turnstile(payload: dict, universe: Universe) -> TurnstileQuantiles:
    summary = TurnstileQuantiles(
        epsilon_of(payload),
        universe_bits=int(payload["universe_bits"]),
        universe=universe,
    )
    levels = []
    for encoded in payload["levels"]:
        sketch = CountMinSketch(
            width=int(encoded["width"]),
            depth=int(encoded["depth"]),
            seed=encoded["seed"],
        )
        sketch._rows = [[int(count) for count in row] for row in encoded["rows"]]
        sketch._total = int(encoded["total"])
        levels.append(sketch)
    summary._levels = levels
    return summary


register_descriptor(
    "turnstile",
    TurnstileQuantiles,
    encode=_encode_turnstile,
    decode=_decode_turnstile,
)
