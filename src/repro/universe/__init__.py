"""The totally ordered, continuous universe substrate.

The paper assumes items are drawn from an unbounded, continuous, totally
ordered universe about which the algorithm knows nothing: the only permitted
operations are comparisons and equality tests (Definition 2.1(i)).  This
package makes that assumption executable:

* :class:`Item` wraps an exact rational key and supports *only* comparisons
  and equality; every other operation raises
  :class:`~repro.errors.ForbiddenItemOperation`.
* :class:`Universe` draws fresh items, including strictly inside any open
  interval (the continuity assumption the adversary relies on).
* :class:`OpenInterval` models the intervals (l, r) maintained by the
  adversarial construction, with ``NEG_INFINITY``/``POS_INFINITY`` sentinels
  for the initial unbounded interval.
* :class:`ComparisonCounter` instruments how many comparisons a summary makes.
"""

from repro.universe.counter import ComparisonCounter, CounterDelta
from repro.universe.item import NEG_INFINITY, POS_INFINITY, Item, key_of
from repro.universe.interval import OpenInterval
from repro.universe.lexicographic import LexicographicUniverse, string_between
from repro.universe.universe import Universe

__all__ = [
    "ComparisonCounter",
    "CounterDelta",
    "Item",
    "LexicographicUniverse",
    "NEG_INFINITY",
    "POS_INFINITY",
    "OpenInterval",
    "Universe",
    "string_between",
    "key_of",
]
