"""Instrumentation for the comparison-based model.

Every :class:`~repro.universe.Item` may carry a reference to a
:class:`ComparisonCounter`.  Each comparison or equality test between two
items increments the counter, which lets tests and benchmarks measure the
comparison cost of a summary and lets the compliance monitor confirm that a
summary interacts with items at all.
"""

from __future__ import annotations


class ComparisonCounter:
    """Counts comparisons and equality tests performed on items.

    The counter distinguishes order comparisons (``<``, ``<=``, ``>``, ``>=``)
    from equality tests (``==``, ``!=``) because Definition 2.1 lists them as
    the two distinct permitted operations.
    """

    __slots__ = ("comparisons", "equality_tests")

    def __init__(self) -> None:
        self.comparisons = 0
        self.equality_tests = 0

    @property
    def total(self) -> int:
        """Total number of item operations observed."""
        return self.comparisons + self.equality_tests

    def record_comparison(self) -> None:
        """Record one order comparison between two items."""
        self.comparisons += 1

    def record_equality_test(self) -> None:
        """Record one equality test between two items."""
        self.equality_tests += 1

    def reset(self) -> None:
        """Reset both counts to zero."""
        self.comparisons = 0
        self.equality_tests = 0

    def __repr__(self) -> str:
        return (
            f"ComparisonCounter(comparisons={self.comparisons}, "
            f"equality_tests={self.equality_tests})"
        )
