"""Instrumentation for the comparison-based model.

Every :class:`~repro.universe.Item` may carry a reference to a
:class:`ComparisonCounter`.  Each comparison or equality test between two
items increments the counter, which lets tests and benchmarks measure the
comparison cost of a summary and lets the compliance monitor confirm that a
summary interacts with items at all.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class CounterDelta:
    """Comparison counts observed during one :meth:`ComparisonCounter.delta` block.

    While the block is open the properties report the counts so far; once it
    exits they freeze at the block's totals, so the object can be kept and
    read after the measured code has moved on.
    """

    __slots__ = ("_counter", "_start_comparisons", "_start_equality", "_frozen")

    def __init__(self, counter: "ComparisonCounter") -> None:
        self._counter = counter
        self._start_comparisons = counter.comparisons
        self._start_equality = counter.equality_tests
        self._frozen: tuple[int, int] | None = None

    def freeze(self) -> None:
        """Fix the delta at the counts accumulated so far."""
        if self._frozen is None:
            self._frozen = (
                self._counter.comparisons - self._start_comparisons,
                self._counter.equality_tests - self._start_equality,
            )

    @property
    def comparisons(self) -> int:
        """Order comparisons performed inside the block."""
        if self._frozen is not None:
            return self._frozen[0]
        return self._counter.comparisons - self._start_comparisons

    @property
    def equality_tests(self) -> int:
        """Equality tests performed inside the block."""
        if self._frozen is not None:
            return self._frozen[1]
        return self._counter.equality_tests - self._start_equality

    @property
    def total(self) -> int:
        """All item operations performed inside the block."""
        return self.comparisons + self.equality_tests

    def __repr__(self) -> str:
        return (
            f"CounterDelta(comparisons={self.comparisons}, "
            f"equality_tests={self.equality_tests})"
        )


class ComparisonCounter:
    """Counts comparisons and equality tests performed on items.

    The counter distinguishes order comparisons (``<``, ``<=``, ``>``, ``>=``)
    from equality tests (``==``, ``!=``) because Definition 2.1 lists them as
    the two distinct permitted operations.
    """

    __slots__ = ("comparisons", "equality_tests")

    def __init__(self) -> None:
        self.comparisons = 0
        self.equality_tests = 0

    @property
    def total(self) -> int:
        """Total number of item operations observed."""
        return self.comparisons + self.equality_tests

    def record_comparison(self) -> None:
        """Record one order comparison between two items."""
        self.comparisons += 1

    def record_equality_test(self) -> None:
        """Record one equality test between two items."""
        self.equality_tests += 1

    def reset(self) -> None:
        """Reset both counts to zero."""
        self.comparisons = 0
        self.equality_tests = 0

    @contextmanager
    def delta(self) -> Iterator[CounterDelta]:
        """Measure the comparisons performed inside a ``with`` block.

        Replaces the manual reset-and-read idiom — and unlike ``reset()``
        it composes: nested or sequential blocks each get their own delta
        without disturbing the running totals::

            with counter.delta() as cost:
                summary.process_all(items)
            print(cost.comparisons, cost.equality_tests)
        """
        measurement = CounterDelta(self)
        try:
            yield measurement
        finally:
            measurement.freeze()

    def __repr__(self) -> str:
        return (
            f"ComparisonCounter(comparisons={self.comparisons}, "
            f"equality_tests={self.equality_tests})"
        )
