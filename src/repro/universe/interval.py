"""Open intervals over the item universe.

The adversarial construction maintains one open interval per stream
(Pseudocode 1 and 2 of the paper).  Endpoints are either items or the
``NEG_INFINITY``/``POS_INFINITY`` sentinels; the interval never contains its
endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.universe.item import NEG_INFINITY, POS_INFINITY, Bound, Item, _Infinity


@dataclass(frozen=True)
class OpenInterval:
    """An open interval (lo, hi) of the universe.

    ``lo`` and ``hi`` may be :class:`~repro.universe.Item` instances or the
    infinite sentinels.  The interval must be non-empty in the continuous
    universe, i.e. ``lo < hi``.
    """

    lo: Bound
    hi: Bound

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ValueError(f"empty open interval: ({self.lo!r}, {self.hi!r})")

    @classmethod
    def unbounded(cls) -> "OpenInterval":
        """The whole universe, (-inf, +inf) — the adversary's initial interval."""
        return cls(NEG_INFINITY, POS_INFINITY)

    @property
    def lo_is_item(self) -> bool:
        """True when the lower endpoint is a stream item (not a sentinel)."""
        return isinstance(self.lo, Item)

    @property
    def hi_is_item(self) -> bool:
        """True when the upper endpoint is a stream item (not a sentinel)."""
        return isinstance(self.hi, Item)

    @property
    def is_unbounded(self) -> bool:
        """True when both endpoints are infinite sentinels."""
        return isinstance(self.lo, _Infinity) and isinstance(self.hi, _Infinity)

    def contains(self, item: Item) -> bool:
        """Whether ``item`` lies strictly inside the interval."""
        return self.lo < item and item < self.hi

    def __repr__(self) -> str:
        return f"OpenInterval({self.lo!r}, {self.hi!r})"
