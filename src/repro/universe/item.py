"""Comparison-only stream items and the infinite sentinels.

An :class:`Item` wraps an exact rational key (``fractions.Fraction``) but
exposes it to client code *only* through comparisons and equality tests,
mirroring Definition 2.1(i) of the paper: a comparison-based summary "does not
perform any operation on items from the stream, apart from a comparison and
the equality test".  Arithmetic, conversion to numbers, formatting into
values, and similar operations raise
:class:`~repro.errors.ForbiddenItemOperation`.

Infrastructure code (the adversary, rank oracles, plots) is allowed to see
the key; it should do so through :func:`key_of` so that such accesses are
easy to audit.

``NEG_INFINITY`` and ``POS_INFINITY`` are singletons ordered below/above all
items.  They are used as the endpoints of the initial unbounded interval in
the adversarial construction and never appear inside streams.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Union

from repro.errors import ForbiddenItemOperation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.universe.counter import ComparisonCounter

_FORBIDDEN_MESSAGE = (
    "items from a comparison-based stream support only comparisons and "
    "equality tests (Definition 2.1 of the paper); operation {op!r} is not "
    "permitted"
)


class _Infinity:
    """Sentinel ordered above (or below) every :class:`Item`.

    Two singletons exist: ``NEG_INFINITY`` and ``POS_INFINITY``.  They give
    the adversary a uniform representation for the initial interval
    (-inf, +inf) of Pseudocode 2.
    """

    __slots__ = ("_sign",)

    def __init__(self, sign: int) -> None:
        self._sign = sign

    @property
    def is_positive(self) -> bool:
        """True for ``POS_INFINITY``, False for ``NEG_INFINITY``."""
        return self._sign > 0

    def __lt__(self, other: object) -> bool:
        if other is self:
            return False
        if isinstance(other, (_Infinity, Item)):
            return self._sign < 0
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if other is self:
            return True
        return self.__lt__(other)

    def __gt__(self, other: object) -> bool:
        if other is self:
            return False
        if isinstance(other, (_Infinity, Item)):
            return self._sign > 0
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if other is self:
            return True
        return self.__gt__(other)

    def __repr__(self) -> str:
        return "+inf" if self._sign > 0 else "-inf"


NEG_INFINITY = _Infinity(-1)
POS_INFINITY = _Infinity(+1)

Bound = Union["Item", _Infinity]


class Item:
    """A single stream item from the totally ordered universe.

    Parameters
    ----------
    key:
        Position of the item in the universe: an exact rational for the
        numeric :class:`~repro.universe.Universe`, or a string for the
        lexicographic one.  Any totally ordered, hashable key works; it is
        hidden from comparison-based client code either way.
    counter:
        Optional :class:`~repro.universe.ComparisonCounter` that records every
        comparison or equality test this item participates in.
    label:
        Optional human-readable tag used by figures and debugging output.
    """

    __slots__ = ("_key", "_counter", "label")

    def __init__(
        self,
        key: "Fraction | str",
        counter: "ComparisonCounter | None" = None,
        label: str | None = None,
    ) -> None:
        self._key = key
        self._counter = counter
        self.label = label

    # -- permitted operations -------------------------------------------------

    def _record_comparison(self, other: object) -> None:
        if self._counter is not None:
            self._counter.record_comparison()
        elif isinstance(other, Item) and other._counter is not None:
            other._counter.record_comparison()

    # The ordering methods inline _record_comparison and compare Fraction
    # keys through their normalised numerator/denominator pairs directly.
    # Item comparisons are the single hottest operation in every summary
    # (a GK insert is almost nothing but them), and Fraction's operator
    # methods spend most of their time in numbers.Rational ABC dispatch
    # that can never apply here: both keys are exact Fractions with
    # positive denominators, so cross-multiplication decides the order.

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Item):
            if self._counter is not None:
                self._counter.record_comparison()
            elif other._counter is not None:
                other._counter.record_comparison()
            a, b = self._key, other._key
            if type(a) is Fraction and type(b) is Fraction:
                return a._numerator * b._denominator < b._numerator * a._denominator
            return a < b
        if isinstance(other, _Infinity):
            return other.is_positive
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, Item):
            if self._counter is not None:
                self._counter.record_comparison()
            elif other._counter is not None:
                other._counter.record_comparison()
            a, b = self._key, other._key
            if type(a) is Fraction and type(b) is Fraction:
                return a._numerator * b._denominator <= b._numerator * a._denominator
            return a <= b
        if isinstance(other, _Infinity):
            return other.is_positive
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, Item):
            if self._counter is not None:
                self._counter.record_comparison()
            elif other._counter is not None:
                other._counter.record_comparison()
            a, b = self._key, other._key
            if type(a) is Fraction and type(b) is Fraction:
                return a._numerator * b._denominator > b._numerator * a._denominator
            return a > b
        if isinstance(other, _Infinity):
            return not other.is_positive
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, Item):
            if self._counter is not None:
                self._counter.record_comparison()
            elif other._counter is not None:
                other._counter.record_comparison()
            a, b = self._key, other._key
            if type(a) is Fraction and type(b) is Fraction:
                return a._numerator * b._denominator >= b._numerator * a._denominator
            return a >= b
        if isinstance(other, _Infinity):
            return not other.is_positive
        return NotImplemented

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Item):
            if self._counter is not None:
                self._counter.record_equality_test()
            elif other._counter is not None:
                other._counter.record_equality_test()
            a, b = self._key, other._key
            if type(a) is Fraction and type(b) is Fraction:
                # Fractions are stored normalised, so equality is
                # component-wise.
                return (
                    a._numerator == b._numerator
                    and a._denominator == b._denominator
                )
            return a == b
        if isinstance(other, _Infinity):
            return False
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Hashing is equality-compatible and reveals no ordering information,
        # so dict/set membership (an equality test) remains permitted.
        return hash(self._key)

    def __repr__(self) -> str:
        if self.label is not None:
            return f"Item({self.label})"
        return f"Item({self._key})"

    # -- forbidden operations --------------------------------------------------

    def _forbidden(self, op: str) -> ForbiddenItemOperation:
        return ForbiddenItemOperation(_FORBIDDEN_MESSAGE.format(op=op))

    def __add__(self, other: object) -> None:
        raise self._forbidden("+")

    __radd__ = __add__

    def __sub__(self, other: object) -> None:
        raise self._forbidden("-")

    __rsub__ = __sub__

    def __mul__(self, other: object) -> None:
        raise self._forbidden("*")

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> None:
        raise self._forbidden("/")

    __rtruediv__ = __truediv__

    def __floordiv__(self, other: object) -> None:
        raise self._forbidden("//")

    __rfloordiv__ = __floordiv__

    def __neg__(self) -> None:
        raise self._forbidden("unary -")

    def __abs__(self) -> None:
        raise self._forbidden("abs")

    def __int__(self) -> None:
        raise self._forbidden("int")

    def __float__(self) -> None:
        raise self._forbidden("float")

    def __index__(self) -> None:
        raise self._forbidden("index")

    def __bool__(self) -> bool:
        raise self._forbidden("bool")


def key_of(item: "Item | int | float") -> "Fraction | str":
    """Return the hidden rational key of ``item``.

    This is the single sanctioned escape hatch for infrastructure code (the
    adversary, rank oracles, table rendering).  Summaries must never call it;
    importing it inside a summary module is a model violation by convention,
    and the compliance tests grep for exactly that.

    Columnar-lane state stores raw numeric keys instead of Items; those map
    to their exact rational value here, so every read path that normalises
    answers through ``key_of`` is lane-agnostic.
    """
    if isinstance(item, Item):
        return item._key
    if isinstance(item, (int, float, Fraction)):
        # Idempotent on Fractions: read paths that already normalised an
        # answer can re-normalise without caring which layer produced it.
        return Fraction(item)
    raise TypeError(f"key_of expects an Item or a raw numeric key, got {item!r}")
