"""The paper's example universe: strings under lexicographic order.

Section 2: "An example of such a universe is a large enough set of long
incompressible strings, ordered lexicographically (where the continuous
assumption may be achieved by making the strings even longer)."

:class:`LexicographicUniverse` realises that example.  Items carry lowercase
string keys; drawing a fresh item strictly inside an open interval extends
strings just enough to fit — the fractional-indexing construction.  Because
the whole library (items, streams, summaries, the adversary) only ever
*compares* items, the adversarial construction runs over this universe
unchanged, and experiment A7 verifies it produces the **same trace** as over
exact rationals — the model's universe-obliviousness, demonstrated.

Strings are kept in a canonical form that never ends in ``'a'`` (the
smallest digit), which makes the string-to-real-number reading injective and
the midpoint construction total.
"""

from __future__ import annotations

from repro.errors import UniverseExhaustedError
from repro.universe.counter import ComparisonCounter
from repro.universe.interval import OpenInterval
from repro.universe.item import Item, key_of
from repro.universe.item import _Infinity

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"
_INDEX = {char: position for position, char in enumerate(_ALPHABET)}
_BASE = len(_ALPHABET)


def _validate(text: str) -> str:
    if not text:
        raise ValueError("the empty string is the interval boundary, not a key")
    for char in text:
        if char not in _INDEX:
            raise ValueError(f"keys use only {_ALPHABET!r}; got {text!r}")
    if text[-1] == _ALPHABET[0]:
        raise ValueError(
            f"canonical keys may not end with {_ALPHABET[0]!r}; got {text!r}"
        )
    return text


def string_between(low: str, high: str | None) -> str:
    """A canonical string strictly between ``low`` and ``high``.

    ``low`` may be the empty string (the bottom of the universe) and ``high``
    may be ``None`` (the top).  Reading strings as base-26 reals in [0, 1)
    — ``'a'`` = digit 0 — this is the classic fractional-indexing midpoint:
    share the common prefix, then either split a digit gap or descend one
    level.  The result never ends in ``'a'``, so it is a valid canonical key.
    """
    if high is not None and not low < high:
        raise UniverseExhaustedError(f"empty string interval ({low!r}, {high!r})")
    prefix = []
    position = 0
    while True:
        low_digit = _INDEX[low[position]] if position < len(low) else 0
        high_digit = (
            _INDEX[high[position]]
            if high is not None and position < len(high)
            else _BASE
        )
        if high_digit - low_digit > 1:
            # Room at this level: take the middle digit (never digit 0,
            # since the midpoint of a gap of >= 2 is >= 1).
            middle = (low_digit + high_digit) // 2
            return "".join(prefix) + _ALPHABET[middle]
        if high_digit - low_digit == 1:
            # Adjacent digits: keep low's digit and continue between
            # low's remainder and the top of that sub-block.
            prefix.append(_ALPHABET[low_digit])
            high = None
            position += 1
            continue
        # Equal digits: extend the common prefix.
        prefix.append(_ALPHABET[low_digit])
        position += 1


class LexicographicUniverse:
    """A universe of lowercase strings under lexicographic order.

    Implements the same drawing interface as
    :class:`~repro.universe.Universe` (``item`` / ``between`` /
    ``ordered_items``), so it can be passed anywhere a universe is expected —
    in particular to :func:`repro.core.build_adversarial_pair`.
    """

    def __init__(self, counter: ComparisonCounter | None = None) -> None:
        self.counter = counter
        self._created = 0

    @property
    def items_created(self) -> int:
        return self._created

    def item(self, value: str, label: str | None = None) -> Item:
        """Create an item at an explicit canonical string key."""
        self._created += 1
        return Item(_validate(value), counter=self.counter, label=label)

    def items(self, values) -> list[Item]:
        """Create one item per string, in the given order."""
        return [self.item(value) for value in values]

    def _bounds_as_strings(self, interval: OpenInterval) -> tuple[str, str | None]:
        lo, hi = interval.lo, interval.hi
        low = "" if isinstance(lo, _Infinity) else str(key_of(lo))
        high = None if isinstance(hi, _Infinity) else str(key_of(hi))
        return low, high

    def between(self, interval: OpenInterval, label: str | None = None) -> Item:
        """Draw one fresh item strictly inside ``interval``."""
        low, high = self._bounds_as_strings(interval)
        return self.item(string_between(low, high), label=label)

    def ordered_items(
        self,
        count: int,
        interval: OpenInterval,
        label_prefix: str | None = None,
    ) -> list[Item]:
        """Draw ``count`` strictly increasing fresh items inside ``interval``.

        Balanced bisection: the midpoint splits the interval, each half
        yields half the items, so key lengths grow only logarithmically in
        ``count`` per recursion level of the adversary.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        low, high = self._bounds_as_strings(interval)
        keys = self._subdivide(low, high, count)
        items = []
        for position, key in enumerate(keys, start=1):
            label = f"{label_prefix}{position}" if label_prefix is not None else None
            items.append(self.item(key, label=label))
        return items

    def _subdivide(self, low: str, high: str | None, count: int) -> list[str]:
        if count == 0:
            return []
        middle = string_between(low, high)
        left = self._subdivide(low, middle, (count - 1) // 2)
        right = self._subdivide(middle, high, count - 1 - (count - 1) // 2)
        return left + [middle] + right
