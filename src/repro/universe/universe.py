"""Drawing fresh items from the continuous universe.

The lower-bound proof relies on the universe being *continuous*: any
non-empty open interval contains unboundedly many items (Section 2 of the
paper).  With exact rational keys this holds by construction — the midpoint
of any non-empty open rational interval is a fresh rational strictly inside
it — so the adversary can always refine its intervals, no matter how deep the
recursion goes.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.errors import UniverseExhaustedError
from repro.universe.counter import ComparisonCounter
from repro.universe.interval import OpenInterval
from repro.universe.item import Item, key_of
from repro.universe.item import _Infinity


class Universe:
    """A factory for items of the totally ordered continuous universe.

    Parameters
    ----------
    counter:
        Optional shared :class:`ComparisonCounter` attached to every item the
        universe creates, so all comparisons on those items are counted.
    """

    def __init__(self, counter: ComparisonCounter | None = None) -> None:
        self.counter = counter
        self._created = 0

    @property
    def items_created(self) -> int:
        """Number of items this universe has handed out."""
        return self._created

    def item(self, value: int | Fraction, label: str | None = None) -> Item:
        """Create an item at an explicit rational position ``value``."""
        self._created += 1
        return Item(Fraction(value), counter=self.counter, label=label)

    def items(self, values: Iterable[int | Fraction]) -> list[Item]:
        """Create one item per value, in the given order."""
        return [self.item(value) for value in values]

    def _bounds_as_fractions(self, interval: OpenInterval) -> tuple[Fraction, Fraction]:
        """Map an interval to concrete rational endpoints.

        Infinite sentinels are replaced by finite anchors one unit beyond the
        other endpoint (or by (0, 1) when both ends are infinite).  Only the
        *openness* of the interval matters to the construction, so any
        concrete anchoring preserves its behaviour.
        """
        lo, hi = interval.lo, interval.hi
        if isinstance(lo, _Infinity) and isinstance(hi, _Infinity):
            return Fraction(0), Fraction(1)
        if isinstance(lo, _Infinity):
            hi_key = key_of(hi)  # type: ignore[arg-type]
            return hi_key - 1, hi_key
        if isinstance(hi, _Infinity):
            lo_key = key_of(lo)
            return lo_key, lo_key + 1
        return key_of(lo), key_of(hi)

    def between(self, interval: OpenInterval, label: str | None = None) -> Item:
        """Draw one fresh item strictly inside ``interval``."""
        lo, hi = self._bounds_as_fractions(interval)
        if not lo < hi:
            raise UniverseExhaustedError(f"cannot draw inside {interval!r}")
        return self.item((lo + hi) / 2, label=label)

    def ordered_items(
        self,
        count: int,
        interval: OpenInterval,
        label_prefix: str | None = None,
    ) -> list[Item]:
        """Draw ``count`` fresh, strictly increasing items inside ``interval``.

        The items are equally spaced, which keeps rational denominators small
        (they grow by a factor of ``count + 1`` per recursion level) and makes
        figures legible.  The adversary only needs *some* increasing sequence
        inside the interval (Pseudocode 2, lines 2-3), so the spacing is free
        to choose.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        lo, hi = self._bounds_as_fractions(interval)
        if not lo < hi:
            raise UniverseExhaustedError(f"cannot draw inside {interval!r}")
        step = (hi - lo) / (count + 1)
        items = []
        for j in range(1, count + 1):
            label = f"{label_prefix}{j}" if label_prefix is not None else None
            items.append(self.item(lo + j * step, label=label))
        return items
