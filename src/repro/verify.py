"""One-call verification: run every proof check against a summary.

``verify_summary`` packages the whole reproduction pipeline — the adversary,
indistinguishability, Claim 1, the space-gap inequality, Lemma 3.4 and the
failing-quantile extraction — into a single structured report.  The CLI's
``attack`` command and several tests are thin layers over it; downstream
users can certify their *own* `QuantileSummary` implementations with one
call:

    from repro.verify import verify_summary
    report = verify_summary(MySummary, epsilon=1/32, k=6)
    print(report.render())
    assert report.survived or report.witness is not None
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.adversary import AdversaryResult, build_adversarial_pair
from repro.core.attacks import FailureWitness, find_failing_quantile
from repro.core.spacegap import claim1_violations, space_gap_violations
from repro.model.summary import QuantileSummary


@dataclass(frozen=True)
class VerificationReport:
    """Everything the proof machinery measured about one summary."""

    summary_name: str
    epsilon: float
    k: int
    length: int
    max_items_stored: int
    final_gap: int
    gap_bound: float
    claim1_violations: int
    space_gap_violations: int
    witness: FailureWitness | None

    @property
    def survived(self) -> bool:
        """Whether the summary answered every quantile within eps N."""
        return self.witness is None

    @property
    def proof_checks_hold(self) -> bool:
        """Claim 1 and Lemma 5.2 must hold for *any* comparison-based summary."""
        return self.claim1_violations == 0 and self.space_gap_violations == 0

    def render(self) -> str:
        lines = [
            f"adversary vs {self.summary_name}: eps = {self.epsilon:g}, "
            f"k = {self.k}, N = {self.length}",
            f"space paid (peak |I|): {self.max_items_stored} items",
            f"final gap: {self.final_gap} vs 2 eps N = {self.gap_bound:.0f}",
            f"proof checks: {self.claim1_violations} Claim 1 violations, "
            f"{self.space_gap_violations} space-gap violations",
        ]
        if self.witness is None:
            lines.append("outcome: SURVIVED — every quantile answered within eps N")
        else:
            worst = float(max(self.witness.error_pi, self.witness.error_rho))
            lines.append(
                f"outcome: DEFEATED — phi = {float(self.witness.phi):.4f} "
                f"answered {worst:.1f} ranks off "
                f"(allowed {float(self.witness.allowed_error):.1f})"
            )
        return "\n".join(lines)


def verify_summary(
    summary_factory: Callable[..., QuantileSummary],
    epsilon: float,
    k: int,
    universe=None,
    observer=None,
    **factory_kwargs,
) -> VerificationReport:
    """Run the full adversarial pipeline and collect a report.

    ``universe`` and ``observer`` pass straight through to
    :func:`~repro.core.adversary.build_adversarial_pair` — supply a
    counter-carrying universe and an
    :class:`~repro.obs.instrument.AdversaryTracer` to get metrics and trace
    spans out of the run.

    Raises :class:`~repro.errors.IndistinguishabilityViolation` (from the
    run itself) if the summary is not a deterministic comparison-based
    algorithm — which is itself a verification outcome: the paper's model
    does not cover it.
    """
    result: AdversaryResult = build_adversarial_pair(
        summary_factory,
        epsilon=epsilon,
        k=k,
        universe=universe,
        observer=observer,
        **factory_kwargs,
    )
    return report_from_result(result)


def report_from_result(result: AdversaryResult) -> VerificationReport:
    """Build a report from an already-completed adversary run."""
    gap = result.final_gap().gap
    return VerificationReport(
        summary_name=result.pair.summary_pi.name,
        epsilon=result.epsilon,
        k=result.k,
        length=result.length,
        max_items_stored=result.max_items_stored(),
        final_gap=gap,
        gap_bound=2 * result.epsilon * result.length,
        claim1_violations=len(claim1_violations(result)),
        space_gap_violations=len(space_gap_violations(result)),
        witness=find_failing_quantile(result),
    )
