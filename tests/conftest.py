"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.universe.counter import ComparisonCounter
from repro.universe.universe import Universe


@pytest.fixture
def universe() -> Universe:
    """A fresh universe without comparison counting."""
    return Universe()


@pytest.fixture
def counted_universe() -> tuple[Universe, ComparisonCounter]:
    """A universe whose items all report into one shared counter."""
    counter = ComparisonCounter()
    return Universe(counter=counter), counter
