"""Ablation machinery: refinement policies, compress periods, experiments."""

import pytest

from repro.core.adversary import build_adversarial_pair
from repro.core.refine import REFINE_POLICIES
from repro.experiments import run_experiment
from repro.streams import random_stream
from repro.summaries.capped import CappedSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import Universe


class TestRefinePolicies:
    @pytest.mark.parametrize("policy", REFINE_POLICIES)
    def test_every_policy_yields_valid_construction(self, policy):
        # Indistinguishability and Observation 1 hold for any adjacent-pair
        # refinement choice — validate=True checks them throughout.
        result = build_adversarial_pair(
            CappedSummary, epsilon=1 / 16, k=4, budget=10, refine_policy=policy
        )
        assert result.length == 16 * 2 * 2**3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown refine policy"):
            build_adversarial_pair(
                CappedSummary, epsilon=1 / 16, k=3, budget=10, refine_policy="best"
            )

    def test_largest_beats_smallest(self):
        largest = build_adversarial_pair(
            CappedSummary, epsilon=1 / 16, k=5, budget=12, refine_policy="largest"
        )
        smallest = build_adversarial_pair(
            CappedSummary, epsilon=1 / 16, k=5, budget=12, refine_policy="smallest"
        )
        assert largest.final_gap().gap > smallest.final_gap().gap

    def test_default_policy_is_largest(self):
        explicit = build_adversarial_pair(
            CappedSummary, epsilon=1 / 16, k=4, budget=12, refine_policy="largest"
        )
        default = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=4, budget=12)
        assert explicit.final_gap().gap == default.final_gap().gap


class TestCompressPeriod:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            GreenwaldKhanna(1 / 8, compress_period=0)

    def test_rare_compression_inflates_peak(self):
        universe = Universe()
        items = random_stream(universe, 4000, seed=0)
        canonical = GreenwaldKhanna(1 / 16)
        lazy = GreenwaldKhanna(1 / 16, compress_period=1000)
        canonical.process_all(items)
        lazy.process_all([item for item in items])
        assert lazy.max_item_count > canonical.max_item_count

    def test_guarantee_unaffected_by_period(self):
        from repro.analysis.accuracy import max_rank_error

        universe = Universe()
        items = random_stream(universe, 2000, seed=1)
        for period in (1, 7, 500):
            summary = GreenwaldKhanna(1 / 16, compress_period=period)
            summary.process_all(items)
            assert max_rank_error(summary, items) <= 1 / 16 + 1 / 2000


class TestAblationExperiments:
    def test_a1_space_collapse(self):
        (table,) = run_experiment("A1", epsilon=1 / 16, k=5, shuffle_seeds=(0,))
        rows = list(zip(table.column("order"), table.column("peak |I|")))
        adversarial = max(int(v) for order, v in rows if order == "adversarial")
        shuffled = max(int(v) for order, v in rows if order.startswith("shuffled"))
        assert adversarial > shuffled

    def test_a2_policies_all_present(self):
        (table,) = run_experiment("A2", epsilon=1 / 16, k=4, budget=10)
        assert len(table.rows) == len(REFINE_POLICIES)

    def test_a3_depth_increases_gap(self):
        (table,) = run_experiment("A3", epsilon=1 / 16, total_log2=8, budget=10)
        gaps = [int(v) for v in table.column("final gap")]
        assert gaps[-1] > gaps[0]

    def test_a4_error_never_degrades(self):
        (table,) = run_experiment("A4", epsilon=1 / 16, length=1000)
        errors = [float(v) for v in table.column("max error / N")]
        assert all(error <= 1 / 16 + 1e-2 for error in errors)

    def test_a5_budgets_respected(self):
        (table,) = run_experiment("A5", epsilon=1 / 32, length=2048, shards=4)
        assert set(table.column("within budget")) == {"yes"}
