"""Bound curves, accuracy profiling and table rendering."""

import pytest

from repro.analysis.accuracy import max_rank_error, quantile_error_profile
from repro.analysis.bounds import (
    biased_lower_bound,
    biased_upper_bound_zhang_wang,
    gk_upper_bound,
    hung_ting_lower_bound,
    kll_upper_bound,
    mrl_upper_bound,
    qdigest_upper_bound,
    theorem22_lower_bound,
    trivial_lower_bound,
)
from repro.analysis.tables import Table
from repro.streams import random_stream
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import Universe


class TestBounds:
    def test_trivial_bound(self):
        assert trivial_lower_bound(1 / 32) == 16

    def test_theorem22_grows_with_n(self):
        epsilon = 1 / 64
        values = [theorem22_lower_bound(epsilon, n) for n in (10**3, 10**6, 10**9)]
        assert values[0] < values[1] < values[2]

    def test_theorem22_zero_above_eps_threshold(self):
        # The explicit constant c = 1/8 - 2 eps vanishes at eps = 1/16.
        assert theorem22_lower_bound(1 / 16, 10**6) == 0
        assert theorem22_lower_bound(1 / 8, 10**6) == 0

    def test_hung_ting_flat_in_n(self):
        epsilon = 1 / 64
        assert hung_ting_lower_bound(epsilon) == hung_ting_lower_bound(epsilon)
        # independent of N by signature: no N parameter at all

    def test_new_bound_eventually_beats_hung_ting(self):
        # With the paper's deliberately slack explicit constant the crossover
        # sits at astronomically large N — what matters is that it exists:
        # Theorem 2.2 grows with N while Hung-Ting is flat.
        epsilon = 1 / 64
        huge_n = round((1 / epsilon) * 2**80)
        assert theorem22_lower_bound(epsilon, huge_n) > hung_ting_lower_bound(epsilon)

    def test_lower_bounds_below_gk_upper(self):
        epsilon = 1 / 64
        for exponent in range(3, 10):
            n = 10**exponent
            assert theorem22_lower_bound(epsilon, n) < gk_upper_bound(epsilon, n)

    def test_mrl_above_gk_asymptotically(self):
        epsilon = 1 / 64
        assert mrl_upper_bound(epsilon, 10**9) > gk_upper_bound(epsilon, 10**9)

    def test_kll_bound_barely_grows_with_delta(self):
        epsilon = 1 / 64
        small = kll_upper_bound(epsilon, 1e-4)
        tiny = kll_upper_bound(epsilon, 1e-64)
        assert small < tiny < small * 6

    def test_qdigest_bound_flat_in_n(self):
        assert qdigest_upper_bound(1 / 16, 32) == 32 * 16

    def test_biased_bounds_ordered(self):
        epsilon, n = 1 / 64, 10**7
        assert biased_lower_bound(epsilon, n) < biased_upper_bound_zhang_wang(epsilon, n)


class TestAccuracy:
    def test_exact_summary_profile_zero(self):
        universe = Universe()
        items = random_stream(universe, 500, seed=0)
        summary = ExactSummary()
        summary.process_all(items)
        profile = quantile_error_profile(summary, items)
        assert profile.max_error <= 1
        assert profile.max_error_normalized <= 1 / 500

    def test_gk_profile_within_epsilon(self):
        universe = Universe()
        items = random_stream(universe, 1000, seed=1)
        summary = GreenwaldKhanna(1 / 8)
        summary.process_all(items)
        assert max_rank_error(summary, items) <= 1 / 8 + 1 / 1000

    def test_bad_summary_profile_exceeds_epsilon(self):
        universe = Universe()
        items = random_stream(universe, 2000, seed=2)
        summary = CappedSummary(1 / 64, budget=4)
        summary.process_all(items)
        assert max_rank_error(summary, items) > 1 / 64

    def test_profile_counts_queries(self):
        universe = Universe()
        items = random_stream(universe, 100, seed=3)
        summary = ExactSummary()
        summary.process_all(items)
        profile = quantile_error_profile(summary, items, grid=10)
        assert profile.queries == 11
        assert profile.n == 100

    def test_empty_stream_rejected(self):
        summary = ExactSummary()
        with pytest.raises(ValueError):
            quantile_error_profile(summary, [])

    def test_mean_at_most_max(self):
        universe = Universe()
        items = random_stream(universe, 300, seed=4)
        summary = GreenwaldKhanna(1 / 8)
        summary.process_all(items)
        profile = quantile_error_profile(summary, items)
        assert profile.mean_error <= profile.max_error


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Title", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 10000.0)
        text = table.render()
        assert "Title" in text
        assert "a" in text and "b" in text
        assert "2.500" in text
        assert "10,000" in text

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_columns_required(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_column_accessor(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("a") == ["1", "3"]

    def test_markdown_shape(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        markdown = table.to_markdown()
        assert "| a | b |" in markdown
        assert "| 1 | 2 |" in markdown

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row(0.0)
        table.add_row(0.12345)
        table.add_row(12.345)
        assert table.column("v") == ["0", "0.123", "12.3"]
