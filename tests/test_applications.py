"""Applications from the paper's introduction: histograms, CDFs, KS tests."""

import random
from fractions import Fraction

import pytest

from repro.analysis.applications import (
    approximate_cdf,
    equi_depth_histogram,
    ks_statistic,
)
from repro.streams import random_stream
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import Universe


class TestEquiDepthHistogram:
    def test_buckets_near_equal_depth(self):
        universe = Universe()
        epsilon = 1 / 32
        n = 3200
        summary = GreenwaldKhanna(epsilon)
        summary.process_all(random_stream(universe, n, seed=0))
        buckets = equi_depth_histogram(summary, 8)
        assert len(buckets) == 8
        for bucket in buckets:
            assert abs(bucket.estimated_count - n / 8) <= 2 * epsilon * n + 1

    def test_counts_sum_to_roughly_n(self):
        universe = Universe()
        summary = GreenwaldKhanna(1 / 32)
        summary.process_all(random_stream(universe, 1000, seed=1))
        buckets = equi_depth_histogram(summary, 5)
        total = sum(bucket.estimated_count for bucket in buckets)
        assert abs(total - 1000) <= 2 * (1 / 32) * 1000

    def test_boundaries_non_decreasing(self):
        universe = Universe()
        summary = GreenwaldKhanna(1 / 16)
        summary.process_all(random_stream(universe, 500, seed=2))
        buckets = equi_depth_histogram(summary, 4)
        uppers = [bucket.upper for bucket in buckets]
        assert all(a <= b for a, b in zip(uppers, uppers[1:]))

    def test_exact_summary_exact_histogram(self, universe):
        summary = ExactSummary()
        summary.process_all(universe.items(range(1, 101)))
        buckets = equi_depth_histogram(summary, 4)
        assert [bucket.estimated_count for bucket in buckets] == [25, 25, 25, 25]

    def test_validation(self, universe):
        summary = ExactSummary()
        with pytest.raises(ValueError):
            equi_depth_histogram(summary, 4)
        summary.process(universe.item(1))
        with pytest.raises(ValueError):
            equi_depth_histogram(summary, 0)


class TestCdf:
    def test_cdf_matches_truth_within_eps(self):
        universe = Universe()
        epsilon = 1 / 32
        summary = GreenwaldKhanna(epsilon)
        summary.process_all(universe.items(range(1, 1001)))
        for value in (100, 250, 500, 900):
            probe = universe.item(Fraction(value) + Fraction(1, 2))
            assert abs(approximate_cdf(summary, probe) - value / 1000) <= epsilon + 0.01

    def test_cdf_bounds(self, universe):
        summary = GreenwaldKhanna(1 / 8)
        summary.process_all(universe.items(range(10, 20)))
        assert approximate_cdf(summary, universe.item(0)) == 0.0
        assert approximate_cdf(summary, universe.item(100)) == 1.0

    def test_empty_rejected(self, universe):
        with pytest.raises(ValueError):
            approximate_cdf(GreenwaldKhanna(1 / 8), universe.item(0))


class TestKsStatistic:
    def test_identical_distributions_small_statistic(self):
        universe = Universe()
        epsilon = 1 / 64
        a, b = GreenwaldKhanna(epsilon), GreenwaldKhanna(epsilon)
        a.process_all(random_stream(universe, 4000, seed=3))
        b.process_all(random_stream(universe, 4000, seed=4))
        assert ks_statistic(a, b) <= 2 * epsilon + 0.05

    def test_shifted_distributions_detected(self):
        universe = Universe()
        rng = random.Random(9)
        epsilon = 1 / 64
        a, b = GreenwaldKhanna(epsilon), GreenwaldKhanna(epsilon)
        a.process_all(
            universe.items(Fraction(rng.randrange(10**6), 10**6) for _ in range(4000))
        )
        b.process_all(
            universe.items(
                Fraction(rng.randrange(10**6), 10**6) + Fraction(1, 4)
                for _ in range(4000)
            )
        )
        statistic = ks_statistic(a, b)
        assert abs(statistic - 0.25) <= 2 * epsilon + 0.05

    def test_empty_rejected(self, universe):
        a, b = GreenwaldKhanna(1 / 8), GreenwaldKhanna(1 / 8)
        a.process(universe.item(1))
        with pytest.raises(ValueError):
            ks_statistic(a, b)
