"""Batch ingest: process_many must be indistinguishable from per-item process.

Three pillars of the batch-first pipeline:

* the **equivalence property** — for every registered summary type, feeding a
  stream through ``process_many`` in arbitrary chunkings leaves exactly the
  state that per-item ``process`` would: same item array, same fingerprint,
  same ``n``, same ``max_item_count`` (randomized types are seeded, so the
  comparison is exact, not statistical);
* the **capability audit** — every registered type overrides the O(s)
  ``_item_count`` fallback and carries a complete descriptor (factory plus
  persistence codec);
* the **merge contract** — merge-capable types are exactly the documented
  set, and merging an unregistered-for-merge type raises
  :class:`UnsupportedMergeError` naming the type.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.summaries  # noqa: F401  (registers every summary type)
from repro.errors import UnsupportedMergeError
from repro.model.registry import (
    create_summary,
    descriptors,
    get_descriptor,
    merge_summaries,
    mergeable_summaries,
)
from repro.model.summary import QuantileSummary
from repro.universe.universe import Universe

ALL_TYPES = [descriptor.name for descriptor in descriptors()]

# qdigest/turnstile read integer values in [0, 2^universe_bits); everything
# else takes arbitrary rationals.
INTEGER_UNIVERSE_TYPES = {"qdigest", "turnstile"}


def _make(name: str, epsilon: float, n: int) -> QuantileSummary:
    if name == "mrl":
        return create_summary(name, epsilon, n_hint=n)
    if name == "sliding-gk":
        # A window smaller than the stream so eviction actually happens.
        return create_summary(name, epsilon, window=max(8, n // 2), blocks=4)
    return create_summary(name, epsilon)


def _chunked(values: list, cuts: list[int]) -> list[list]:
    bounds = sorted({cut for cut in cuts if 0 < cut < len(values)})
    chunks = []
    previous = 0
    for bound in bounds + [len(values)]:
        chunks.append(values[previous:bound])
        previous = bound
    return [chunk for chunk in chunks if chunk]


def _state(summary: QuantileSummary) -> tuple:
    from repro.universe.item import key_of

    return (
        [key_of(item) for item in summary.item_array()],
        summary.fingerprint(),
        summary.n,
        summary.max_item_count,
    )


class TestBatchEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        raw=st.lists(
            st.integers(min_value=0, max_value=999), min_size=1, max_size=160
        ),
        cuts=st.lists(st.integers(min_value=1, max_value=159), max_size=6),
        epsilon=st.sampled_from([0.02, 0.1]),
    )
    def test_process_many_equals_per_item_process(self, raw, cuts, epsilon):
        for name in ALL_TYPES:
            if name in INTEGER_UNIVERSE_TYPES:
                values = [Fraction(value) for value in raw]
            else:
                values = [Fraction(value, 3) for value in raw]

            sequential = _make(name, epsilon, len(values))
            for item in Universe().items(values):
                sequential.process(item)

            batched = _make(name, epsilon, len(values))
            for chunk in _chunked(values, cuts):
                batched.process_many(Universe().items(chunk))

            assert _state(batched) == _state(sequential), name

    def test_single_call_covers_the_whole_stream(self):
        values = [Fraction(value, 2) for value in range(500)]
        for name in ALL_TYPES:
            if name in INTEGER_UNIVERSE_TYPES:
                stream = [Fraction(value) for value in range(500)]
            else:
                stream = values
            sequential = _make(name, 0.05, len(stream))
            for item in Universe().items(stream):
                sequential.process(item)
            batched = _make(name, 0.05, len(stream))
            batched.process_many(Universe().items(stream))
            assert _state(batched) == _state(sequential), name

    def test_empty_batch_is_a_no_op(self):
        for name in ALL_TYPES:
            summary = _make(name, 0.1, 10)
            summary.process_many([])
            assert summary.n == 0
            assert summary.max_item_count == 0


class TestCapabilityAudit:
    def test_no_registered_type_uses_the_item_count_fallback(self):
        # The base-class fallback is len(item_array()) — O(s) list building
        # on every processed item.  Every registered type must override it
        # with an O(1) counter read.
        for descriptor in descriptors():
            assert (
                descriptor.cls._item_count is not QuantileSummary._item_count
            ), f"{descriptor.name} inherits the O(s) _item_count fallback"

    def test_every_descriptor_is_complete(self):
        for descriptor in descriptors():
            assert descriptor.factory is not None, descriptor.name
            assert descriptor.cls is not None, descriptor.name
            assert descriptor.encode is not None, descriptor.name
            assert descriptor.decode is not None, descriptor.name
            assert descriptor.payload_type, descriptor.name

    def test_batch_kernel_flag_matches_the_class(self):
        for descriptor in descriptors():
            overridden = (
                descriptor.cls._process_batch
                is not QuantileSummary._process_batch
            )
            assert descriptor.has_batch_kernel == overridden, descriptor.name

    def test_flags_match_class_attributes(self):
        for descriptor in descriptors():
            assert (
                descriptor.is_comparison_based
                == descriptor.cls.is_comparison_based
            ), descriptor.name
            assert (
                descriptor.is_deterministic == descriptor.cls.is_deterministic
            ), descriptor.name


class TestMergeContract:
    def test_mergeable_set_is_exactly_the_documented_one(self):
        assert tuple(mergeable_summaries()) == (
            "exact",
            "gk",
            "gk-greedy",
            "kll",
            "mrl",
            "req",
        )

    def test_merge_less_types_raise_naming_the_type(self):
        for descriptor in descriptors():
            if descriptor.merge is not None:
                continue
            first = _make(descriptor.name, 0.1, 8)
            second = _make(descriptor.name, 0.1, 8)
            try:
                merge_summaries(first, second)
            except UnsupportedMergeError as error:
                assert descriptor.name in str(error)
            else:
                raise AssertionError(
                    f"{descriptor.name} merged without a registered merge"
                )

    def test_get_descriptor_round_trips_every_name(self):
        for name in ALL_TYPES:
            assert get_descriptor(name).name == name
