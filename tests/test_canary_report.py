"""CanaryReport: serialisation round-trips, comparison, and the gate."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    CANARY_FORMAT,
    CANARY_KIND,
    CanaryReport,
    GateThresholds,
    TIMING_FIELDS,
    compare_reports,
    gate_report,
    load_report,
    normalized_payload,
    report_path,
)
from repro.scenarios.report import CanaryError, shed_rate_of


def make_report(**overrides) -> CanaryReport:
    fields = dict(
        scenario="sorted",
        seed=0,
        config={"pattern": "sorted", "inserts": 4},
        budgets={"max_rank_error": 0.02, "p99_us": 500000.0, "shed_rate": 0.01},
        ops={"total": 20, "ok": 20, "inserts": 4, "reads": 16},
        errors={},
        shed_rate=0.0,
        accuracy={
            "n": 400,
            "per_phi": {"0.5": 0.005},
            "max_rank_error": 0.005,
            "rank_probe_max_error": 0.0025,
        },
        latency_us={"insert": {"p50": 900.0, "p95": 1500.0, "p99": 2000.0}},
        throughput={"seconds": 0.5, "ops_per_second": 40.0},
        audit={"audits": 3, "violations": 0},
        timestamp="2026-08-08T00:00:00+00:00",
    )
    fields.update(overrides)
    return CanaryReport(**fields)


class TestRoundTrip:
    def test_payload_round_trip(self):
        report = make_report()
        payload = report.to_payload()
        assert payload["kind"] == CANARY_KIND
        assert payload["format"] == CANARY_FORMAT
        assert CanaryReport.from_payload(payload) == report

    def test_file_round_trip(self, tmp_path):
        report = make_report()
        path = report.write(tmp_path)
        assert path == report_path(tmp_path, "sorted")
        assert path.name == "CANARY_sorted.json"
        assert load_report(path) == report

    def test_dump_is_stable_json(self):
        report = make_report(errors={"b": 2, "a": 1})
        first, second = report.dump(), report.dump()
        assert first == second
        payload = json.loads(first)
        assert list(payload["errors"]) == ["a", "b"]

    def test_from_payload_rejects_wrong_kind(self):
        with pytest.raises(CanaryError, match="not a canary report"):
            CanaryReport.from_payload({"kind": "something-else"})

    def test_from_payload_rejects_unknown_format(self):
        payload = make_report().to_payload()
        payload["format"] = 999
        with pytest.raises(CanaryError, match="format"):
            CanaryReport.from_payload(payload)

    def test_from_payload_rejects_missing_fields(self):
        payload = make_report().to_payload()
        del payload["accuracy"]
        with pytest.raises(CanaryError, match="accuracy"):
            CanaryReport.from_payload(payload)

    def test_load_report_bad_file(self, tmp_path):
        with pytest.raises(CanaryError, match="cannot read"):
            load_report(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CanaryError, match="not JSON"):
            load_report(bad)


json_scalars = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
json_dicts = st.dictionaries(
    st.text(min_size=1, max_size=10), json_scalars, max_size=5
)


class TestRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        config=json_dicts,
        ops=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.integers(min_value=0, max_value=10**6),
            max_size=5,
        ),
        errors=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.integers(min_value=1, max_value=1000),
            max_size=4,
        ),
        shed=st.floats(min_value=0, max_value=1, allow_nan=False),
        accuracy=json_dicts,
    )
    def test_arbitrary_payloads_survive_json(
        self, seed, config, ops, errors, shed, accuracy
    ):
        report = make_report(
            seed=seed, config=config, ops=ops, errors=errors,
            shed_rate=shed, accuracy=accuracy,
        )
        recovered = CanaryReport.from_payload(
            json.loads(json.dumps(report.to_payload()))
        )
        assert normalized_payload(recovered) == normalized_payload(report)
        # Timing fields survive too; only equality may be perturbed by
        # float round-tripping, which json.dumps/loads does not do.
        assert recovered == report


class TestCompare:
    def test_identical_reports(self):
        diff = compare_reports(make_report(), make_report())
        assert diff["identical"] is True
        assert diff["changes"] == []

    def test_timing_only_difference_stays_identical(self):
        slower = make_report(
            latency_us={"insert": {"p50": 9000.0, "p95": 9500.0, "p99": 9900.0}},
            throughput={"seconds": 5.0, "ops_per_second": 4.0},
            audit={"audits": 99, "violations": 1},
            timestamp="2027-01-01T00:00:00+00:00",
        )
        diff = compare_reports(make_report(), slower)
        assert diff["identical"] is True
        ratios = {entry["field"]: entry["ratio"] for entry in diff["timing"]}
        assert ratios["latency_us.insert.p50"] == 10.0
        assert ratios["throughput.ops_per_second"] == 0.1

    def test_gateable_difference_detected(self):
        worse = make_report(accuracy={**make_report().accuracy,
                                      "max_rank_error": 0.5})
        diff = compare_reports(make_report(), worse)
        assert diff["identical"] is False
        assert any(
            change["field"] == "accuracy.max_rank_error"
            for change in diff["changes"]
        )

    def test_cross_scenario_comparison_refused(self):
        with pytest.raises(CanaryError, match="different scenarios"):
            compare_reports(make_report(), make_report(scenario="zoomin"))

    def test_normalized_payload_drops_every_timing_field(self):
        payload = normalized_payload(make_report())
        for field in TIMING_FIELDS:
            assert field not in payload
        assert "accuracy" in payload and "errors" in payload


class TestGate:
    def test_healthy_report_passes(self):
        assert gate_report(make_report()) == []

    def test_rank_error_violation(self):
        report = make_report(
            accuracy={"n": 100, "max_rank_error": 0.1,
                      "rank_probe_max_error": 0.0}
        )
        violations = gate_report(report)
        assert len(violations) == 1
        assert "rank error 0.1" in violations[0]

    def test_rank_probe_violation(self):
        report = make_report(
            accuracy={"n": 100, "max_rank_error": 0.0,
                      "rank_probe_max_error": 0.09}
        )
        assert any("rank-probe" in v for v in gate_report(report))

    def test_shed_violation(self):
        report = make_report(shed_rate=0.5)
        assert any("shed rate" in v for v in gate_report(report))

    def test_latency_violation(self):
        report = make_report(
            latency_us={"query": {"p50": 1.0, "p95": 2.0, "p99": 10**9}}
        )
        assert any("p99" in v for v in gate_report(report))

    def test_threshold_overrides_beat_embedded_budgets(self):
        report = make_report()  # passes its own budgets
        tight = GateThresholds(max_rank_error=0.0001)
        assert gate_report(report, tight)
        loose = GateThresholds(
            max_rank_error=1.0, p99_budget_us=10**12, shed_budget=1.0
        )
        assert gate_report(make_report(shed_rate=0.5), loose) == []

    def test_missing_accuracy_fields_do_not_crash(self):
        report = make_report(accuracy={"n": 0})
        assert gate_report(report) == []


class TestShedRate:
    def test_counts_only_shed_codes(self):
        errors = {"overloaded": 2, "deadline_exceeded": 1,
                  "shutting_down": 1, "malformed_record": 7}
        assert shed_rate_of(errors, 100) == pytest.approx(0.04)

    def test_zero_ops(self):
        assert shed_rate_of({"overloaded": 3}, 0) == 0.0
