"""End-to-end canary runs: determinism, the CLI gate, connector replay.

These are the PR's acceptance tests: running ``repro canary run --scenario
adversarial --seed 0`` twice must produce identical reports modulo timing
fields, and ``repro canary gate`` must exit nonzero on a report whose
accuracy violates its budget.
"""

import io
import json

import pytest

from repro.cli import main
from repro.scenarios import (
    compare_reports,
    get_scenario,
    load_report,
    normalized_payload,
    report_path,
    run_scenario_sync,
)

#: Small enough for CI, big enough to exercise every moving part.
SMOKE = dict(inserts=6, values_per_insert=50, readers=2, reads_per_reader=4,
             rank_probes=8)


def _cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDeterminism:
    def test_adversarial_run_twice_is_identical_modulo_timing(self, tmp_path):
        """The headline acceptance criterion, driven through the real CLI."""
        argv = [
            "canary", "run", "--scenario", "adversarial", "--seed", "0",
            "--values-per-insert", "50", "--readers", "2",
            "--reads-per-reader", "4",
        ]
        code_a, _ = _cli(argv + ["--out", str(tmp_path / "a")])
        code_b, _ = _cli(argv + ["--out", str(tmp_path / "b")])
        assert code_a == 0 and code_b == 0
        first = load_report(report_path(tmp_path / "a", "adversarial"))
        second = load_report(report_path(tmp_path / "b", "adversarial"))
        diff = compare_reports(first, second)
        assert diff["identical"], diff["changes"]
        assert normalized_payload(first) == normalized_payload(second)
        # The run actually measured something.
        assert first.accuracy["n"] > 0
        assert first.accuracy["max_rank_error"] <= first.budgets["max_rank_error"]

    def test_different_seeds_differ_for_random_patterns(self):
        scenario = get_scenario("heavy-tail", **SMOKE)
        one = run_scenario_sync(scenario, seed=0)
        two = run_scenario_sync(scenario, seed=1)
        assert normalized_payload(one) != normalized_payload(two)

    def test_compare_cli_exit_codes(self, tmp_path):
        scenario = get_scenario("sorted", **SMOKE)
        run_scenario_sync(scenario, seed=0).write(tmp_path / "a")
        run_scenario_sync(scenario, seed=0).write(tmp_path / "b")
        run_scenario_sync(scenario, seed=2).write(tmp_path / "c")
        same = [str(report_path(tmp_path / "a", "sorted")),
                str(report_path(tmp_path / "b", "sorted"))]
        code, text = _cli(["canary", "compare", *same])
        assert code == 0 and "identical" in text
        # A different seed is part of the gateable core, so compare flags it.
        code, text = _cli([
            "canary", "compare", same[0],
            str(report_path(tmp_path / "c", "sorted")),
        ])
        assert code == 1 and "seed" in text


class TestGateCli:
    def _healthy_report_path(self, tmp_path):
        scenario = get_scenario("sorted", **SMOKE)
        return run_scenario_sync(scenario, seed=0).write(tmp_path)

    def test_gate_passes_on_healthy_report(self, tmp_path):
        path = self._healthy_report_path(tmp_path)
        code, text = _cli(["canary", "gate", str(path)])
        assert code == 0
        assert text.startswith("ok")

    def test_gate_exits_nonzero_on_corrupted_report(self, tmp_path):
        """The second headline acceptance criterion."""
        path = self._healthy_report_path(tmp_path)
        payload = json.loads(path.read_text())
        payload["accuracy"]["max_rank_error"] = 0.5  # way past the budget
        path.write_text(json.dumps(payload))
        code, text = _cli(["canary", "gate", str(path)])
        assert code == 1
        assert "rank error 0.5" in text

    def test_gate_threshold_overrides(self, tmp_path):
        path = self._healthy_report_path(tmp_path)
        code, _ = _cli([
            "canary", "gate", str(path), "--max-rank-error", "0.0000001"
        ])
        assert code == 1
        code, _ = _cli([
            "canary", "gate", str(path),
            "--max-rank-error", "1.0", "--shed-budget", "1.0",
            "--p99-budget-us", "1e12",
        ])
        assert code == 0

    def test_run_with_gate_flag(self, tmp_path):
        code, _ = _cli([
            "canary", "run", "--scenario", "sorted", "--seed", "0",
            "--inserts", "6", "--values-per-insert", "50",
            "--readers", "2", "--reads-per-reader", "4",
            "--out", str(tmp_path), "--gate",
        ])
        assert code == 0


class TestConnectorReplay:
    def test_synthetic_replay_through_service_sink(self):
        scenario = get_scenario(
            "connector-replay", synthetic_records=400, readers=2,
            reads_per_reader=4, rank_probes=8,
        )
        report = run_scenario_sync(scenario, seed=0)
        assert report.accuracy["n"] == 400
        assert report.ops["connector"]["ingested"] == 400
        assert report.ops["connector"]["dead_lettered"] == 0
        assert report.accuracy["max_rank_error"] <= scenario.rank_error_budget
        # Determinism holds across the connector path too.
        again = run_scenario_sync(scenario, seed=0)
        assert normalized_payload(again) == normalized_payload(report)

    def test_poison_records_land_in_the_error_census(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [json.dumps({"value": i}) for i in range(1, 101)]
        lines.insert(10, "not json")
        lines.insert(50, json.dumps({"wrong_field": 1}))
        lines.insert(70, json.dumps({"value": "NaN"}))
        path.write_text("\n".join(lines) + "\n")
        scenario = get_scenario(
            "connector-replay", source=str(path), readers=1,
            reads_per_reader=2, rank_probes=4,
        )
        report = run_scenario_sync(scenario, seed=0)
        assert report.accuracy["n"] == 100
        assert report.ops["connector"]["dead_lettered"] == 3
        dlq_codes = {
            code: count for code, count in report.errors.items()
            if code.startswith("dlq:")
        }
        assert sum(dlq_codes.values()) == 3
        assert len(dlq_codes) >= 2  # distinct poison kinds, distinct codes

    def test_all_scenarios_smoke(self):
        """Every catalog scenario runs and stays within its budgets."""
        from repro.scenarios import scenario_names

        for name in scenario_names():
            overrides = dict(SMOKE)
            if name == "adversarial":
                overrides.pop("inserts")  # stream length fixed by (eps, k)
            if name == "connector-replay":
                overrides = dict(readers=2, reads_per_reader=4,
                                 rank_probes=8, synthetic_records=300)
            report = run_scenario_sync(get_scenario(name, **overrides), seed=0)
            assert report.accuracy["n"] > 0, name
            assert (
                report.accuracy["max_rank_error"]
                <= report.budgets["max_rank_error"]
            ), name
            assert report.shed_rate <= report.budgets["shed_rate"], name


class TestAuditOnTheWire:
    def test_self_hosted_run_reports_audit_census(self):
        scenario = get_scenario("sorted", **SMOKE, audit_fraction=1.0)
        report = run_scenario_sync(scenario, seed=0)
        assert report.audit["audits"] > 0
        assert report.audit["violations"] == 0
        assert report.audit["shadow_items"] > 0

    def test_remote_run_requires_port(self):
        with pytest.raises(ValueError, match="host and port"):
            run_scenario_sync(get_scenario("sorted", **SMOKE), host="127.0.0.1")
