"""ASCII chart rendering."""

import pytest

from repro.analysis.charts import AsciiChart


def make_chart(**kwargs):
    chart = AsciiChart("test chart", **kwargs)
    chart.set_x([1, 2, 3])
    return chart


class TestValidation:
    def test_height_minimum(self):
        with pytest.raises(ValueError):
            AsciiChart("t", height=2)

    def test_series_before_x_rejected(self):
        chart = AsciiChart("t")
        with pytest.raises(ValueError, match="set_x"):
            chart.add_series("s", [1, 2])

    def test_length_mismatch_rejected(self):
        chart = make_chart()
        with pytest.raises(ValueError, match="3 x positions"):
            chart.add_series("s", [1, 2])

    def test_render_without_series_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            make_chart().render()

    def test_too_many_series_rejected(self):
        chart = make_chart()
        for index in range(8):
            chart.add_series(f"s{index}", [1, 2, 3])
        with pytest.raises(ValueError, match="at most"):
            chart.add_series("s9", [1, 2, 3])


class TestRendering:
    def test_contains_title_labels_and_legend(self):
        chart = make_chart()
        chart.add_series("alpha", [1, 5, 9])
        text = chart.render()
        assert "test chart" in text
        assert "* = alpha" in text
        assert " 1" in text and " 3" in text

    def test_monotone_series_marks_distinct_rows(self):
        chart = make_chart(height=6)
        chart.add_series("up", [0, 50, 100])
        rows = chart.render().splitlines()[1:7]
        marks = [row_index for row_index, row in enumerate(rows) if "*" in row]
        assert marks == sorted(marks)
        assert len(marks) == 3

    def test_collision_marker(self):
        chart = make_chart(height=5)
        chart.add_series("a", [1, 2, 3])
        chart.add_series("b", [1, 2, 3])
        assert "!" in chart.render()

    def test_log_scale_compresses_big_values(self):
        chart = make_chart(height=8, log_y=True)
        chart.add_series("wide", [1, 1000, 1_000_000])
        text = chart.render()
        assert "1,000,000" in text  # top axis label

    def test_flat_series_renders(self):
        chart = make_chart()
        chart.add_series("flat", [5, 5, 5])
        assert chart.render()

    def test_markdown_is_fenced(self):
        chart = make_chart()
        chart.add_series("a", [1, 2, 3])
        markdown = chart.to_markdown()
        assert markdown.startswith("**test chart**")
        assert "```" in markdown
