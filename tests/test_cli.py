"""The ``python -m repro`` command-line interface."""

import io

import pytest

from repro.cli import main


class TestSummariesCommand:
    def test_lists_algorithms(self):
        out = io.StringIO()
        assert main(["summaries"], out=out) == 0
        text = out.getvalue()
        for name in ("gk", "kll", "mrl", "qdigest"):
            assert name in text


class TestQuantilesCommand:
    def write_numbers(self, tmp_path, values):
        path = tmp_path / "data.txt"
        path.write_text("\n".join(str(v) for v in values) + "\n")
        return str(path)

    def test_quantiles_from_file(self, tmp_path):
        path = self.write_numbers(tmp_path, range(1, 101))
        out = io.StringIO()
        code = main(
            ["quantiles", "--input", path, "--epsilon", "0.05", "--phi", "0.5"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "n = 100" in text
        assert "phi = 0.5" in text

    def test_median_value_close(self, tmp_path):
        path = self.write_numbers(tmp_path, range(1, 1001))
        out = io.StringIO()
        main(["quantiles", "--input", path, "--epsilon", "0.01", "--phi", "0.5"], out=out)
        reported = int(out.getvalue().split("phi = 0.5:")[1].strip().splitlines()[0])
        assert abs(reported - 500) <= 11

    def test_histogram_flag(self, tmp_path):
        path = self.write_numbers(tmp_path, range(1, 201))
        out = io.StringIO()
        main(
            ["quantiles", "--input", path, "--epsilon", "0.05", "--histogram", "4"],
            out=out,
        )
        assert "bucket 4" in out.getvalue()

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("# header\n1\n\n2\n3\n")
        out = io.StringIO()
        main(["quantiles", "--input", str(path), "--epsilon", "0.2"], out=out)
        assert "n = 3" in out.getvalue()

    def test_bad_number_reported_with_line(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1\noops\n")
        with pytest.raises(SystemExit, match="line 2"):
            main(["quantiles", "--input", str(path)], out=io.StringIO())

    def test_empty_input_rejected(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("")
        with pytest.raises(SystemExit, match="no input"):
            main(["quantiles", "--input", str(path)], out=io.StringIO())

    def test_stdin_default(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("5\n3\n9\n"))
        out = io.StringIO()
        main(["quantiles", "--epsilon", "0.2", "--phi", "0.5"], out=out)
        assert "n = 3" in out.getvalue()

    def test_mrl_gets_n_hint(self, tmp_path):
        path = self.write_numbers(tmp_path, range(1, 301))
        out = io.StringIO()
        code = main(
            ["quantiles", "--input", path, "--summary", "mrl", "--epsilon", "0.05"],
            out=out,
        )
        assert code == 0


class TestAttackCommand:
    def test_gk_survives(self):
        out = io.StringIO()
        code = main(
            ["attack", "--summary", "gk", "--epsilon", "0.03125", "--k", "4"],
            out=out,
        )
        assert code == 0
        assert "SURVIVED" in out.getvalue()

    def test_capped_defeated_nonzero_exit(self):
        out = io.StringIO()
        code = main(
            [
                "attack",
                "--summary",
                "capped",
                "--budget",
                "8",
                "--epsilon",
                "0.0625",
                "--k",
                "4",
            ],
            out=out,
        )
        assert code == 1
        text = out.getvalue()
        assert "DEFEATED" in text
        assert "0 Claim 1 violations" in text

    def test_seeded_kll(self):
        out = io.StringIO()
        code = main(
            [
                "attack",
                "--summary",
                "kll",
                "--seed",
                "0",
                "--epsilon",
                "0.0625",
                "--k",
                "4",
            ],
            out=out,
        )
        assert code in (0, 1)
        assert "adversary vs kll" in out.getvalue()
