"""The ``python -m repro engine`` subcommands."""

import io
import json

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def _ingest(tmp_path, extra=(), n=2000):
    checkpoint = str(tmp_path / "engine.jsonl")
    code, text = _run(
        [
            "engine", "ingest",
            "--checkpoint", checkpoint,
            "--generate", str(n),
            "--shards", "4",
            "--seed", "11",
            *extra,
        ]
    )
    return checkpoint, code, text


class TestEngineIngest:
    def test_generate_and_checkpoint(self, tmp_path):
        checkpoint, code, text = _ingest(tmp_path)
        assert code == 0
        assert "ingested 2000 items" in text
        assert "4 shard(s)" in text
        assert "checkpoint:" in text

    def test_input_file(self, tmp_path):
        data = tmp_path / "data.txt"
        data.write_text("\n".join(str(v) for v in range(500)) + "\n")
        checkpoint = str(tmp_path / "engine.jsonl")
        code, text = _run(
            ["engine", "ingest", "--checkpoint", checkpoint, "--input", str(data)]
        )
        assert code == 0
        assert "ingested 500 items" in text

    def test_resume_accumulates(self, tmp_path):
        checkpoint, _, _ = _ingest(tmp_path)
        code, text = _run(
            [
                "engine", "ingest", "--checkpoint", checkpoint, "--resume",
                "--generate", "1000", "--seed", "12",
            ]
        )
        assert code == 0
        assert "total n = 3000" in text

    def test_input_and_generate_conflict(self, tmp_path):
        with pytest.raises(SystemExit, match="not both"):
            _run(
                [
                    "engine", "ingest", "--checkpoint", str(tmp_path / "c"),
                    "--generate", "10", "--input", "whatever.txt",
                ]
            )

    def test_nonpositive_generate_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="positive"):
            _run(
                [
                    "engine", "ingest", "--checkpoint", str(tmp_path / "c"),
                    "--generate", "0",
                ]
            )

    def test_unmergeable_summary_rejected_by_argparse(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            _run(
                [
                    "engine", "ingest", "--checkpoint", str(tmp_path / "c"),
                    "--generate", "10", "--summary", "qdigest",
                ]
            )

    def test_bad_shards_reported_as_error(self, tmp_path):
        with pytest.raises(SystemExit, match="shards"):
            _run(
                [
                    "engine", "ingest", "--checkpoint", str(tmp_path / "c"),
                    "--generate", "10", "--shards", "0",
                ]
            )


class TestEngineQuery:
    def test_quantiles_and_ranks(self, tmp_path):
        checkpoint, _, _ = _ingest(tmp_path)
        code, text = _run(
            [
                "engine", "query", "--checkpoint", checkpoint,
                "--phi", "0.5", "--rank", "500000000",
            ]
        )
        assert code == 0
        assert "phi = 0.5:" in text
        assert "rank(5e+08)" in text

    def test_missing_checkpoint_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            _run(
                ["engine", "query", "--checkpoint", str(tmp_path / "nope.jsonl")]
            )

    def test_query_answers_match_library(self, tmp_path):
        from repro.engine import ShardedQuantileEngine

        checkpoint, _, _ = _ingest(tmp_path)
        _, text = _run(
            ["engine", "query", "--checkpoint", checkpoint, "--phi", "0.5"]
        )
        reported = text.split("phi = 0.5:")[1].strip().splitlines()[0]
        engine = ShardedQuantileEngine.restore(checkpoint)
        assert reported == str(engine.query(0.5))


class TestEngineStats:
    def test_human_view_has_telemetry(self, tmp_path):
        checkpoint, _, _ = _ingest(tmp_path)
        code, text = _run(["engine", "stats", "--checkpoint", checkpoint])
        assert code == 0
        assert "items_ingested = 2000" in text
        assert "latency quantiles (microseconds):" in text
        assert "ingest_batch" in text
        assert "p50" in text

    def test_json_view_is_valid_json(self, tmp_path):
        checkpoint, _, _ = _ingest(tmp_path)
        code, text = _run(
            ["engine", "stats", "--checkpoint", checkpoint, "--json"]
        )
        assert code == 0
        stats = json.loads(text)
        assert stats["items_ingested"] == 2000
        assert stats["config"]["shards"] == 4
        assert stats["telemetry"]["counters"]["batches_ingested"] >= 1
