"""``repro ingest`` end to end: preflight, DLQ, resume, SIGTERM, JSON."""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.connectors import read_dlq
from repro.engine.checkpoint import read_checkpoint

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_ingest_fixture_into_checkpoint_with_dlq(tmp_path) -> None:
    checkpoint = tmp_path / "ckpt.jsonl"
    dlq = tmp_path / "dlq.jsonl"
    code, output = run_cli(
        "ingest",
        "--source", str(FIXTURES / "poison.jsonl"),
        "--checkpoint", str(checkpoint),
        "--dlq", str(dlq),
        "--shards", "2",
    )
    assert code == 0
    assert "6 ingested, 6 dead-lettered of 12" in output
    entries = read_dlq(dlq)
    assert len(entries) == 6
    codes = sorted(entry["code"] for entry in entries)
    assert codes == [
        "bad_json", "bad_type", "bad_type",
        "malformed_record", "malformed_record", "missing_field",
    ]
    assert all(entry["position"]["byte"] > 0 for entry in entries)


def test_ingest_resume_skips_consumed_records(tmp_path) -> None:
    source = tmp_path / "events.jsonl"
    source.write_text('{"value": 1}\n{"value": 2}\n')
    checkpoint = tmp_path / "ckpt.jsonl"
    run_cli("ingest", "--source", str(source), "--checkpoint", str(checkpoint))
    with open(source, "a") as handle:
        handle.write('{"value": 3}\n')
    code, output = run_cli(
        "ingest", "--source", str(source), "--checkpoint", str(checkpoint),
        "--resume",
    )
    assert code == 0
    assert "1 ingested, 0 dead-lettered of 1 [resumed]" in output
    assert read_checkpoint(checkpoint)["items_ingested"] == 3


def test_ingest_synthetic_matches_engine_generate_stream(tmp_path) -> None:
    via_connector = tmp_path / "connector.jsonl"
    via_engine = tmp_path / "engine.jsonl"
    run_cli(
        "ingest", "--synthetic", "500", "--seed", "11",
        "--checkpoint", str(via_connector), "--shards", "2",
    )
    run_cli(
        "engine", "ingest", "--generate", "500", "--seed", "11",
        "--checkpoint", str(via_engine), "--shards", "2",
    )
    connector_parts = read_checkpoint(via_connector)
    engine_parts = read_checkpoint(via_engine)
    assert connector_parts["shard_payloads"] == engine_parts["shard_payloads"]


def test_preflight_json_reports_the_poison_census(tmp_path) -> None:
    code, output = run_cli(
        "ingest", "--source", str(FIXTURES / "poison.jsonl"),
        "--preflight", "--dry-run", "--json",
    )
    assert code == 0
    payload = json.loads(output)
    assert payload["ok"] is True
    assert payload["exhaustive"] is True
    assert payload["would_ingest"] == 6
    assert payload["would_dead_letter"] == 6


def test_preflight_exit_code_signals_problems(tmp_path) -> None:
    code, output = run_cli(
        "ingest", "--source", str(tmp_path / "gone.jsonl"), "--preflight"
    )
    assert code == 1
    assert "FAILED" in output


def test_ingest_requires_exactly_one_sink(tmp_path) -> None:
    with pytest.raises(SystemExit, match="exactly one"):
        run_cli("ingest", "--source", str(FIXTURES / "poison.jsonl"))


def test_ingest_requires_a_source() -> None:
    with pytest.raises(SystemExit, match="at least one"):
        run_cli("ingest", "--checkpoint", "x.jsonl")


def test_ingest_json_report_and_metrics_dump(tmp_path) -> None:
    metrics = tmp_path / "metrics.json"
    code, output = run_cli(
        "ingest",
        "--source", str(FIXTURES / "poison.jsonl"),
        "--checkpoint", str(tmp_path / "ckpt.jsonl"),
        "--json", "--metrics", str(metrics),
    )
    assert code == 0
    report = json.loads(output.splitlines()[0] + "".join(output.splitlines()[1:-1]))
    assert report["ingested"] == 6
    assert report["dead_lettered"] == 6
    payload = json.loads(metrics.read_text())
    names = {entry["name"] for entry in payload["counters"]}
    assert "connector_records_total" in names
    assert "connector_dlq_total" in names


def test_ingest_trace_records_the_drain_span(tmp_path) -> None:
    trace = tmp_path / "trace.jsonl"
    run_cli(
        "ingest",
        "--source", str(FIXTURES / "poison.jsonl"),
        "--checkpoint", str(tmp_path / "ckpt.jsonl"),
        "--trace", str(trace),
    )
    names = [
        json.loads(line).get("name")
        for line in trace.read_text().splitlines()
    ]
    assert "ingest.connector.drain" in names


def test_sigterm_mid_ingest_then_resume_is_bit_identical(tmp_path) -> None:
    """Kill a real ingest process mid-file; resume must converge exactly."""
    source = tmp_path / "big.jsonl"
    with open(source, "w") as handle:
        for i in range(120_000):
            handle.write('{"value": %d}\n' % (i * 7 + 3))

    oracle = tmp_path / "oracle.jsonl"
    run_cli(
        "ingest", "--source", str(source), "--checkpoint", str(oracle),
        "--shards", "2",
    )
    expected = read_checkpoint(oracle)

    checkpoint = tmp_path / "ckpt.jsonl"
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    argv = [
        sys.executable, "-m", "repro", "ingest",
        "--source", str(source), "--checkpoint", str(checkpoint),
        "--shards", "2", "--batch-size", "512",
    ]
    process = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT
    )
    time.sleep(1.0)
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=60)
    assert process.returncode == 0, output.decode()

    run_cli(
        "ingest", "--source", str(source), "--checkpoint", str(checkpoint),
        "--shards", "2", "--resume",
    )
    resumed = read_checkpoint(checkpoint)
    assert resumed["items_ingested"] == 120_000
    assert resumed["shard_payloads"] == expected["shard_payloads"]
