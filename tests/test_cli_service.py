"""The ``python -m repro serve`` / ``client`` subcommands.

The serve command is exercised for real: a background thread runs
``repro serve`` on an ephemeral loopback port while the main thread drives
``repro client`` invocations against it, including the deterministic load
generator with its accuracy check.
"""

import io
import json
import re
import threading
import time

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 9421
        assert args.max_queue_jobs == 256
        assert args.default_deadline_ms == 5000.0

    def test_client_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["client", "ping"]).client_command == "ping"
        args = parser.parse_args(
            ["client", "--port", "7", "query", "--phi", "0.5", "0.9"]
        )
        assert args.port == 7 and args.phi == [0.5, 0.9]
        args = parser.parse_args(["client", "insert", "1", "2", "7/2"])
        assert args.values == ["1", "2", "7/2"]
        args = parser.parse_args(
            ["client", "load", "--clients", "3", "--check-epsilon", "0.05"]
        )
        assert args.clients == 3 and args.check_epsilon == 0.05

    def test_client_insert_rejects_values_plus_generate(self):
        with pytest.raises(SystemExit):
            _run(
                [
                    "client", "--port", "1", "insert", "5",
                    "--generate", "10",
                ]
            )


@pytest.fixture(scope="class")
def live_server(tmp_path_factory):
    """``repro serve`` on an ephemeral port, drained at fixture teardown."""
    checkpoint = str(tmp_path_factory.mktemp("serve") / "serve.jsonl")
    out = io.StringIO()
    done = threading.Event()

    def target():
        try:
            main(
                [
                    "serve", "--port", "0", "--shards", "2",
                    "--epsilon", "0.02", "--serve-for", "60",
                    "--checkpoint", checkpoint,
                ],
                out=out,
            )
        finally:
            done.set()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    port = None
    for _ in range(200):
        match = re.search(r"on 127\.0\.0\.1:(\d+)", out.getvalue())
        if match:
            port = match.group(1)
            break
        time.sleep(0.02)
    assert port, f"server never came up: {out.getvalue()!r}"
    yield {"port": port, "checkpoint": checkpoint, "out": out, "done": done}


class TestServeAndClient:
    def test_full_session_against_a_live_server(self, live_server):
        port = live_server["port"]

        code, text = _run(["client", "--port", port, "ping"])
        assert code == 0
        assert json.loads(text)["ok"] is True

        code, text = _run(
            ["client", "--port", port, "insert", "--generate", "3000", "--seed", "5"]
        )
        assert code == 0
        assert json.loads(text)["items"] == 3000

        code, text = _run(
            ["client", "--port", port, "query", "--phi", "0.5"]
        )
        assert code == 0
        response = json.loads(text)
        assert response["n"] == 3000
        assert response["results"][0]["phi"] == 0.5

        code, text = _run(["client", "--port", port, "rank", "--value", "500000000"])
        assert code == 0
        assert json.loads(text)["results"][0]["rank"] > 0

        code, text = _run(["client", "--port", port, "stats"])
        assert code == 0
        stats = json.loads(text)
        assert stats["engine"]["items_ingested"] == 3000
        assert stats["service"]["draining"] is False

        code, text = _run(["client", "--port", port, "metrics"])
        assert code == 0
        assert "# TYPE service_requests_total counter" in text
        assert "engine_latency_ns" in text

        code, text = _run(
            [
                "client", "--port", port, "load",
                "--clients", "4", "--ops", "10", "--seed", "3",
            ]
        )
        assert code == 0
        report = json.loads(text)
        assert report["ops"] == 40
        assert report["ok"] + sum(report["errors"].values()) == 40


class TestLoadAccuracyCheck:
    def test_load_check_epsilon_against_a_fresh_server(self):
        out = io.StringIO()
        done = threading.Event()

        def target():
            try:
                main(
                    [
                        "serve", "--port", "0", "--shards", "2",
                        "--epsilon", "0.02", "--serve-for", "30",
                    ],
                    out=out,
                )
            finally:
                done.set()

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        port = None
        for _ in range(200):
            match = re.search(r"on 127\.0\.0\.1:(\d+)", out.getvalue())
            if match:
                port = match.group(1)
                break
            time.sleep(0.02)
        assert port, "server never came up"

        code, text = _run(
            [
                "client", "--port", port, "load",
                "--clients", "8", "--ops", "15", "--seed", "1",
                "--check-epsilon", "0.02",
            ]
        )
        assert code == 0
        report = json.loads(text)
        assert report["accuracy_ok"] is True
        assert report["max_rank_error"] <= 0.02
