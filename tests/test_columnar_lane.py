"""The columnar lane: bit-identical answers to the items lane, end to end.

The lane contract (docs/model.md, "Lanes"): the columnar lane is a
*representation* choice, never a semantics choice.  For every
columnar-capable summary type, feeding raw numerics through
``process_numeric`` must leave state that is fingerprint-identical,
checkpoint-identical, and answer-identical to the items lane — across
negative ints, bools, int-valued floats, ints beyond int64 (which fall off
the native kernel), mixed-lane streams (demotion), merges, the engine's
executors, and the persistence round-trip.
"""

import json
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.summaries  # noqa: F401  (registers every summary type)
from repro.engine.config import EngineConfig
from repro.engine.engine import ShardedQuantileEngine
from repro.engine.workers.ipc import (
    MODE_I64,
    MODE_INTS,
    decode_numeric,
    decode_values,
    encode_int_bucket,
)
from repro.errors import EngineError
from repro.model.lanes import promote_to_columnar
from repro.model.registry import (
    columnar_summaries,
    create_summary,
    get_descriptor,
)
from repro.persistence import dump, load
from repro.universe.item import Item, key_of
from repro.universe.universe import Universe

COLUMNAR_TYPES = columnar_summaries()

#: Raw values every columnar-capable type must map exactly like the items
#: lane: negative ints, bools, int-valued floats, and ints beyond int64.
numeric_values = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6).map(float),
    st.integers(min_value=2**63, max_value=2**64),
)


def _make(name: str, epsilon: float = 0.05):
    return create_summary(name, epsilon)


def _keys(summary) -> list:
    return [key_of(entry) for entry in summary.item_array()]


def _queries(summary) -> list:
    phis = (0.01, 0.25, 0.5, 0.75, 0.99)
    return [key_of(summary.query(phi)) for phi in phis]


def test_columnar_registry():
    """The columnar capability is a registry fact, mirrored from the class."""
    assert "gk" in COLUMNAR_TYPES
    assert "gk-greedy" in COLUMNAR_TYPES
    assert "kll" in COLUMNAR_TYPES
    for name in COLUMNAR_TYPES:
        descriptor = get_descriptor(name)
        assert descriptor.columnar
        assert getattr(descriptor.cls, "supports_columnar", False)


@pytest.mark.parametrize("name", COLUMNAR_TYPES)
@given(values=st.lists(numeric_values, min_size=1, max_size=400))
@settings(max_examples=25, deadline=None)
def test_lane_equivalence(name, values):
    """process_numeric leaves exactly the state the items lane would."""
    items_lane = _make(name)
    items_lane.process_many(Universe().items([Fraction(v) for v in values]))

    columnar = _make(name)
    columnar.process_numeric(values)

    assert columnar.lane == "columnar"
    assert columnar.n == items_lane.n
    assert columnar.fingerprint() == items_lane.fingerprint()
    assert columnar.max_item_count == items_lane.max_item_count
    assert _keys(columnar) == _keys(items_lane)
    assert _queries(columnar) == _queries(items_lane)


@pytest.mark.parametrize("name", COLUMNAR_TYPES)
@given(
    values=st.lists(numeric_values, min_size=2, max_size=200),
    cut=st.integers(min_value=1, max_value=199),
)
@settings(max_examples=15, deadline=None)
def test_demotion_equivalence(name, values, cut):
    """A columnar summary fed Items mid-stream demotes, states still agree."""
    cut = min(cut, len(values) - 1)
    mixed = _make(name)
    mixed.process_numeric(values[:cut])
    mixed.process_many(Universe().items([Fraction(v) for v in values[cut:]]))
    assert mixed.lane == "items"

    items_lane = _make(name)
    items_lane.process_many(Universe().items([Fraction(v) for v in values]))
    assert mixed.fingerprint() == items_lane.fingerprint()
    assert _keys(mixed) == _keys(items_lane)


@pytest.mark.parametrize("name", COLUMNAR_TYPES)
def test_checkpoint_round_trip_byte_identical(name):
    """Columnar-ingested state persists byte-identically to the items lane."""
    rng = random.Random(17)
    values = [rng.randint(-(10**9), 10**9) for _ in range(5000)]

    items_lane = _make(name)
    items_lane.process_many(Universe().items([Fraction(v) for v in values]))
    columnar = _make(name)
    columnar.process_numeric(values)

    items_payload = json.dumps(dump(items_lane), sort_keys=True)
    columnar_payload = json.dumps(dump(columnar), sort_keys=True)
    assert columnar_payload == items_payload

    # The restored summary answers identically and promotes back cleanly.
    restored = load(json.loads(columnar_payload), Universe())
    assert restored.lane == "items"
    assert _queries(restored) == _queries(items_lane)
    assert promote_to_columnar(restored)
    assert restored.lane == "columnar"
    assert restored.fingerprint() == items_lane.fingerprint()
    assert json.dumps(dump(restored), sort_keys=True) == items_payload


def test_promote_refuses_non_integral_state():
    """A summary holding non-integral rationals stays on the items lane."""
    summary = _make("gk")
    summary.process_many(
        Universe().items([Fraction(1, 3), Fraction(7, 2), Fraction(5)])
    )
    assert not promote_to_columnar(summary)
    assert summary.lane == "items"


def test_rank_index_from_columnar_state():
    """The compiled read index answers identically from raw-key state."""
    rng = random.Random(23)
    values = [rng.randint(0, 10**6) for _ in range(4000)]
    for name in COLUMNAR_TYPES:
        descriptor = get_descriptor(name)
        items_lane = _make(name)
        items_lane.process_many(Universe().items([Fraction(v) for v in values]))
        columnar = _make(name)
        columnar.process_numeric(values)
        index_items = descriptor.compile_index(items_lane)
        index_columnar = descriptor.compile_index(columnar)
        for phi in (0.01, 0.25, 0.5, 0.75, 0.99):
            # The columnar index serves raw keys, the items index serves
            # Items; key_of is the read layer's common currency.
            assert key_of(index_columnar.quantile(phi)) == key_of(
                index_items.quantile(phi)
            )
        for probe in values[::397]:
            fraction = Fraction(probe)
            assert index_columnar.rank(fraction) == index_items.rank(fraction)


def test_merge_reconciles_lanes():
    """Merging mixed-lane summaries demotes, and states match all-items."""
    from repro.summaries import merge_gk

    rng = random.Random(5)
    left_values = [rng.randint(0, 10**6) for _ in range(2000)]
    right_values = [rng.randint(0, 10**6) for _ in range(2000)]

    columnar_left = _make("gk")
    columnar_left.process_numeric(left_values)
    items_right = _make("gk")
    items_right.process_many(
        Universe().items([Fraction(v) for v in right_values])
    )
    mixed = merge_gk(columnar_left, items_right)

    items_left = _make("gk")
    items_left.process_many(Universe().items([Fraction(v) for v in left_values]))
    items_right2 = _make("gk")
    items_right2.process_many(
        Universe().items([Fraction(v) for v in right_values])
    )
    baseline = merge_gk(items_left, items_right2)
    assert mixed.fingerprint() == baseline.fingerprint()
    assert _keys(mixed) == _keys(baseline)


# -- the engine layer ---------------------------------------------------------------


def test_engine_config_rejects_non_columnar_summary():
    with pytest.raises(EngineError) as excinfo:
        EngineConfig(summary="mrl", epsilon=0.05, lane="columnar").validate()
    for name in COLUMNAR_TYPES:
        assert name in str(excinfo.value)


def test_engine_config_rejects_unknown_lane():
    with pytest.raises(EngineError):
        EngineConfig(summary="gk", epsilon=0.05, lane="rowwise").validate()


def test_engine_config_payload_round_trip_and_compat():
    config = EngineConfig(summary="gk", epsilon=0.05, lane="columnar")
    assert EngineConfig.from_payload(config.to_payload()).lane == "columnar"
    # Pre-lane checkpoints carry no lane field and default to items.
    payload = config.to_payload()
    del payload["lane"]
    assert EngineConfig.from_payload(payload).lane == "items"


@pytest.mark.parametrize("executor", ["serial", "thread", "processes"])
def test_engine_lane_equivalence(executor):
    """Every executor serves identical answers from either lane."""
    rng = random.Random(31)
    values = [rng.randint(-(10**6), 10**6) for _ in range(20000)]

    def answers(lane):
        config = EngineConfig(
            summary="gk",
            epsilon=0.02,
            shards=3,
            workers=2,
            executor=executor,
            lane=lane,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(values, batch_size=4096)
            quantiles = [
                key_of(engine.query(phi)) for phi in (0.1, 0.5, 0.9)
            ]
            counts = [
                shard["items"] for shard in engine.stats()["shards"]
            ]
            return quantiles, counts

    assert answers("columnar") == answers("items")


def test_engine_stats_reports_shard_lane():
    config = EngineConfig(summary="gk", epsilon=0.05, shards=2, lane="columnar")
    with ShardedQuantileEngine(config) as engine:
        engine.ingest([1, 2, 3, 4, 5, 6, 7, 8], batch_size=4)
        lanes = {shard["lane"] for shard in engine.stats()["shards"]}
    assert lanes == {"columnar"}


def test_engine_malformed_record_semantics_unchanged():
    """The columnar lane's fallback keeps the items-lane error contract."""
    config = EngineConfig(summary="gk", epsilon=0.05, shards=2, lane="columnar")
    with ShardedQuantileEngine(config) as engine:
        with pytest.raises(EngineError):
            engine.ingest([1, 2, "not-a-number"], batch_size=8)


# -- the IPC codec ------------------------------------------------------------------


def test_encode_int_bucket_round_trip():
    bucket = [0, -1, 2**62, -(2**62), 7]
    mode, payload = encode_int_bucket(bucket)
    assert mode == MODE_I64
    assert isinstance(payload, bytes)
    assert decode_numeric(mode, payload) == bucket
    # Decoding an i64 frame as rationals is the defensive items-lane view.
    assert decode_values(mode, payload) == [Fraction(v) for v in bucket]


def test_encode_int_bucket_overflow_falls_back():
    bucket = [1, 2**70]
    mode, payload = encode_int_bucket(bucket)
    assert mode == MODE_INTS
    assert decode_numeric(mode, payload) == bucket
