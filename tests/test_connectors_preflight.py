"""Preflight: read-only answers to "will this ingest run work?"."""

from __future__ import annotations

from pathlib import Path

from repro.connectors import (
    DirectorySource,
    JsonlSource,
    OffsetStore,
    SyntheticSource,
    run_preflight,
)

FIXTURES = Path(__file__).parent / "fixtures"


def test_preflight_counts_ingestable_and_poison_records(tmp_path) -> None:
    report = run_preflight([JsonlSource(FIXTURES / "poison.jsonl")], sample=None)
    assert report.ok
    assert report.exhaustive
    check = report.checks[0]
    assert check.sampled == 12
    assert check.would_ingest == 6
    assert check.would_dead_letter == 6
    assert check.dead_letter_codes == {
        "bad_json": 1,
        "missing_field": 1,
        "bad_type": 2,
        "malformed_record": 2,
    }
    payload = report.to_payload()
    assert payload["ok"] is True
    assert payload["sources"][0]["dead_letter_codes"]["bad_type"] == 2


def test_preflight_sample_bounds_the_walk() -> None:
    report = run_preflight([JsonlSource(FIXTURES / "poison.jsonl")], sample=3)
    assert not report.exhaustive
    assert report.checks[0].sampled == 3


def test_preflight_fails_on_a_missing_file(tmp_path) -> None:
    report = run_preflight([JsonlSource(tmp_path / "gone.jsonl")])
    assert not report.ok
    assert report.checks[0].sampled == 0
    assert any("does not exist" in p for p in report.checks[0].problems)


def test_preflight_fails_on_an_inconsistent_offset(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('{"value": 1}\n')
    offsets = OffsetStore({path.name: {"byte": 10**6, "records": 4}})
    report = run_preflight([JsonlSource(path)], offsets)
    assert not report.ok
    assert report.checks[0].resumes
    assert any("beyond the end" in p for p in report.checks[0].problems)


def test_preflight_flags_duplicate_source_names(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('{"value": 1}\n')
    report = run_preflight([JsonlSource(path), JsonlSource(path)])
    assert not report.ok
    assert any("duplicate" in p for p in report.checks[1].problems)


def test_preflight_warns_on_empty_sources(tmp_path) -> None:
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    report = run_preflight([JsonlSource(path)])
    assert report.ok  # empty is a warning, not a failure
    assert any("no records" in w for w in report.checks[0].warnings)


def test_preflight_warns_when_offset_is_at_the_end(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('{"value": 1}\n')
    records = list(JsonlSource(path).records())
    offsets = OffsetStore({path.name: records[-1].position})
    report = run_preflight([JsonlSource(path)], offsets)
    assert report.ok
    assert any("end of the source" in w for w in report.checks[0].warnings)


def test_preflight_covers_directories_and_synthetic(tmp_path) -> None:
    (tmp_path / "a.jsonl").write_text('{"value": 1}\nbroken\n')
    report = run_preflight(
        [DirectorySource(tmp_path, name="dir"), SyntheticSource(5, seed=1)]
    )
    assert report.ok
    by_name = {check.source: check for check in report.checks}
    assert by_name["dir"].would_dead_letter == 1
    assert by_name["synthetic"].would_ingest == 5
    assert by_name["synthetic"].lag == 5
