"""Crash-resume exactness: no drop, no double-count, bit-identical answers.

The oracle is the checkpoint itself: two engines whose shard summaries
serialise to identical payloads answer every quantile and rank query
identically (persistence is exact).  So "interrupted + resumed ==
uninterrupted" is checked by comparing ``shard_payloads`` byte-for-byte,
not by sampling a few quantiles.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.connectors import (
    DeadLetterQueue,
    EngineSink,
    IngestRunner,
    JsonlSource,
    OffsetStore,
    RunnerConfig,
)
from repro.engine import EngineConfig, ShardedQuantileEngine
from repro.engine.checkpoint import read_checkpoint, write_checkpoint
from repro.errors import CheckpointError


def poison_stream(count: int) -> str:
    """A JSONL stream where every 5th line is poison."""
    lines = []
    for i in range(count):
        if i % 5 == 4:
            lines.append("broken %d" % i)
        else:
            lines.append(json.dumps({"value": i * 3 + 1}))
    return "\n".join(lines) + "\n"


def run_to_checkpoint(tmp_path, source_path, checkpoint, *, max_records=None):
    if checkpoint.exists():
        sink, offsets = EngineSink.restore(str(checkpoint))
    else:
        engine = ShardedQuantileEngine(EngineConfig(shards=3))
        sink, offsets = EngineSink(engine, str(checkpoint)), OffsetStore()
    runner = IngestRunner(
        [JsonlSource(source_path, name="events")],
        sink,
        offsets=offsets,
        dlq=DeadLetterQueue(None),
        config=RunnerConfig(batch_size=7, max_records=max_records),
    )
    return runner.run()


def shard_state(checkpoint) -> tuple:
    parts = read_checkpoint(checkpoint)
    return parts["items_ingested"], parts["shard_payloads"]


@pytest.mark.parametrize("cut", [1, 7, 13, 29, 40])
def test_interrupted_resume_is_bit_identical_to_uninterrupted(
    tmp_path, cut
) -> None:
    source_path = tmp_path / "events.jsonl"
    source_path.write_text(poison_stream(41))

    oracle = tmp_path / "oracle.jsonl"
    run_to_checkpoint(tmp_path, source_path, oracle)

    interrupted = tmp_path / "interrupted.jsonl"
    first = run_to_checkpoint(
        tmp_path, source_path, interrupted, max_records=cut
    )
    assert first.records == cut
    second = run_to_checkpoint(tmp_path, source_path, interrupted)
    assert first.records + second.records == 41

    assert shard_state(interrupted) == shard_state(oracle)


def test_resume_after_every_possible_cut_never_drops_or_doubles(tmp_path) -> None:
    total = 23
    source_path = tmp_path / "events.jsonl"
    source_path.write_text(poison_stream(total))
    oracle = tmp_path / "oracle.jsonl"
    run_to_checkpoint(tmp_path, source_path, oracle)
    expected = shard_state(oracle)
    for cut in range(1, total + 1):
        checkpoint = tmp_path / f"cut{cut}.jsonl"
        run_to_checkpoint(tmp_path, source_path, checkpoint, max_records=cut)
        run_to_checkpoint(tmp_path, source_path, checkpoint)
        assert shard_state(checkpoint) == expected, f"cut at record {cut}"


# -- offset codec properties --------------------------------------------------------

position_payloads = st.one_of(
    st.fixed_dictionaries(
        {"byte": st.integers(0, 2**40), "records": st.integers(0, 2**32)}
    ),
    st.fixed_dictionaries({"records": st.integers(0, 2**32)}),
    st.fixed_dictionaries(
        {
            "files": st.dictionaries(
                st.text(min_size=1, max_size=20),
                st.fixed_dictionaries(
                    {"byte": st.integers(0, 2**40), "records": st.integers(0, 2**32)}
                ),
                max_size=5,
            ),
            "records": st.integers(0, 2**32),
        }
    ),
)


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=30), position_payloads, max_size=8))
def test_offset_codec_round_trips_exactly(offsets) -> None:
    store = OffsetStore(offsets)
    assert OffsetStore.from_record(store.to_record()) == store
    # And through JSON text, which is how it actually travels.
    assert (
        OffsetStore.from_record(json.loads(json.dumps(store.to_record()))) == store
    )


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=30), position_payloads, max_size=8))
def test_offset_sidecar_save_load_round_trips(tmp_path_factory, offsets) -> None:
    path = tmp_path_factory.mktemp("offsets") / "offsets.json"
    store = OffsetStore(offsets)
    store.save(path)
    assert OffsetStore.load(path) == store


# -- checkpoint forward compatibility -----------------------------------------------


def ingested_engine() -> ShardedQuantileEngine:
    engine = ShardedQuantileEngine(EngineConfig(shards=2))
    engine.ingest(range(50))
    return engine


def test_checkpoint_with_embedded_offsets_round_trips(tmp_path) -> None:
    engine = ingested_engine()
    store = OffsetStore({"events": {"byte": 123, "records": 9}})
    path = tmp_path / "ckpt.jsonl"
    engine.checkpoint(path, extra_records=[store.to_record()])

    parts = read_checkpoint(path)
    assert OffsetStore.from_extra_records(parts["extra_records"]) == store
    restored = ShardedQuantileEngine.restore(path)
    assert restored.items_ingested == engine.items_ingested
    assert restored.quantiles([0.5]) == engine.quantiles([0.5])


def test_reader_tolerates_unknown_record_kinds_and_header_keys(tmp_path) -> None:
    engine = ingested_engine()
    path = tmp_path / "ckpt.jsonl"
    engine.checkpoint(path)

    # A newer writer adds a header key and an unknown record kind.
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["invented_by_a_future_version"] = {"nested": True}
    lines[0] = json.dumps(header)
    lines.insert(2, json.dumps({"kind": "from-the-future", "payload": [1, 2]}))
    path.write_text("\n".join(lines) + "\n")

    parts = read_checkpoint(path)
    assert {"kind": "from-the-future", "payload": [1, 2]} in parts["extra_records"]
    restored = ShardedQuantileEngine.restore(path)
    assert restored.items_ingested == 50


def test_pre_connector_checkpoint_means_start_from_the_beginning(tmp_path) -> None:
    path = tmp_path / "ckpt.jsonl"
    ingested_engine().checkpoint(path)
    sink, offsets = EngineSink.restore(str(path))
    assert len(offsets) == 0
    assert offsets.get("anything") is None


def test_extra_records_must_not_reuse_engine_kinds(tmp_path) -> None:
    engine = ingested_engine()
    path = tmp_path / "ckpt.jsonl"
    with pytest.raises(CheckpointError, match="novel"):
        write_checkpoint(path, engine, extra_records=[{"kind": "shard"}])
    with pytest.raises(CheckpointError, match="novel"):
        write_checkpoint(path, engine, extra_records=["not a dict"])
