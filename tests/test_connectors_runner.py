"""The ingest runner: batching, DLQ routing, offsets, metrics, spans."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.connectors import (
    DeadLetterQueue,
    EngineSink,
    IngestRunner,
    JsonlSource,
    OffsetStore,
    RunnerConfig,
    SyntheticSource,
    read_dlq,
)
from repro.engine import EngineConfig, ShardedQuantileEngine
from repro.errors import ConnectorError
from repro.obs import MetricRegistry, read_trace, trace_to

POISON_LINES = (
    '{"value": 1}\n'
    '{"value": 2}\n'
    "broken json\n"
    '{"value": "7/2"}\n'
    '{"value": "NaN"}\n'
    '{"other": 5}\n'
    '{"value": true}\n'
    '{"value": 3}\n'
)


@pytest.fixture
def poison_file(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(POISON_LINES)
    return path


def engine_runner(tmp_path, source, **kwargs):
    engine = ShardedQuantileEngine(EngineConfig(shards=2))
    sink = EngineSink(engine, str(tmp_path / "ckpt.jsonl"))
    return IngestRunner([source], sink, **kwargs)


def test_runner_ingests_good_records_and_dead_letters_poison(
    tmp_path, poison_file
) -> None:
    dlq = DeadLetterQueue(tmp_path / "dlq.jsonl")
    runner = engine_runner(tmp_path, JsonlSource(poison_file), dlq=dlq)
    report = runner.run()
    assert report.records == 8
    assert report.ingested == 4
    assert report.dead_lettered == 4
    assert runner.sink.engine.items_ingested == 4
    assert dlq.by_code == {
        "bad_json": 1,
        "missing_field": 1,
        "bad_type": 1,
        "malformed_record": 1,
    }
    entries = read_dlq(tmp_path / "dlq.jsonl")
    assert len(entries) == 4
    for entry in entries:
        assert entry["source"] == "events.jsonl"
        assert entry["raw"]
        assert entry["position"]["byte"] > 0
    # The exact rational survived: 7/2 went in as a Fraction, not a float.
    engine = runner.sink.engine
    assert engine.quantiles([0.5])[0] in (Fraction(2), Fraction(3))


def test_runner_advances_offsets_past_a_poison_tail(tmp_path) -> None:
    path = tmp_path / "tail.jsonl"
    path.write_text('{"value": 1}\nbroken\nalso broken\n')
    runner = engine_runner(tmp_path, JsonlSource(path))
    runner.run()
    _, offsets = EngineSink.restore(str(tmp_path / "ckpt.jsonl"))
    # A resumed run re-reads nothing: the offset sits after the last poison
    # line, so the DLQ is not re-populated on resume.
    resumed = engine_runner(
        tmp_path, JsonlSource(path), offsets=offsets
    )
    report = resumed.run()
    assert report.records == 0
    assert resumed.dlq.entries == 0


def test_runner_counts_metrics_per_source(tmp_path, poison_file) -> None:
    registry = MetricRegistry()
    runner = engine_runner(
        tmp_path, JsonlSource(poison_file), registry=registry
    )
    runner.run()
    consumed = registry.get("connector_records_total", source="events.jsonl")
    ingested = registry.get("connector_ingested_total", source="events.jsonl")
    lag = registry.get("connector_source_lag", source="events.jsonl")
    assert consumed.value == 8
    assert ingested.value == 4
    assert lag.value == 0
    dlq_codes = {
        metric.labels: metric.value
        for metric in registry
        if metric.name == "connector_dlq_total"
    }
    assert sum(dlq_codes.values()) == 4


def test_runner_emits_a_drain_span_per_source(tmp_path, poison_file) -> None:
    trace_path = tmp_path / "trace.jsonl"
    runner = engine_runner(tmp_path, JsonlSource(poison_file))
    with trace_to(trace_path):
        runner.run()
    spans = [
        record
        for record in read_trace(trace_path)
        if record.get("name") == "ingest.connector.drain"
    ]
    assert len(spans) == 1
    attributes = spans[0]["attributes"]
    assert attributes["source"] == "events.jsonl"
    assert attributes["records"] == 8
    assert attributes["ingested"] == 4
    assert attributes["dead_lettered"] == 4


def test_runner_respects_max_records_and_reports_batches(tmp_path) -> None:
    runner = engine_runner(
        tmp_path,
        SyntheticSource(100, seed=3),
        config=RunnerConfig(batch_size=10, max_records=35),
    )
    report = runner.run()
    assert report.records == 35
    assert report.ingested == 35
    assert report.batches == 4  # 3 full batches + the final partial flush


def test_request_stop_checkpoints_and_resumes_cleanly(tmp_path) -> None:
    class StopAfter(SyntheticSource):
        def __init__(self, runner_box, after, **kwargs):
            super().__init__(**kwargs)
            self._box = runner_box
            self._after = after

        def records(self, position=None):
            for number, record in enumerate(super().records(position), start=1):
                yield record
                if number == self._after:
                    self._box["runner"].request_stop()

    box: dict = {}
    source = StopAfter(box, after=17, count=50, seed=5)
    runner = engine_runner(
        tmp_path, source, config=RunnerConfig(batch_size=8)
    )
    box["runner"] = runner
    report = runner.run()
    assert report.stopped
    assert 0 < report.records < 50
    sink, offsets = EngineSink.restore(str(tmp_path / "ckpt.jsonl"))
    resumed = IngestRunner(
        [SyntheticSource(50, seed=5)], sink, offsets=offsets
    )
    resumed_report = resumed.run()
    assert resumed_report.records == 50 - report.records
    assert sink.engine.items_ingested == 50


def test_follow_mode_drains_appended_data_until_polls_run_out(tmp_path) -> None:
    path = tmp_path / "grow.jsonl"
    path.write_text('{"value": 1}\n')

    class Growing(JsonlSource):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self._grown = False

        def records(self, position=None):
            yield from super().records(position)
            if not self._grown:
                self._grown = True
                with open(self.path, "a") as handle:
                    handle.write('{"value": 2}\n')

    runner = engine_runner(
        tmp_path,
        Growing(path),
        config=RunnerConfig(follow=True, poll_interval_s=0.0, max_polls=2),
    )
    report = runner.run()
    assert report.ingested == 2
    assert report.sweeps >= 2


def test_duplicate_source_names_are_rejected(tmp_path, poison_file) -> None:
    with pytest.raises(ConnectorError, match="unique"):
        engine_runner_sources = [
            JsonlSource(poison_file),
            JsonlSource(poison_file),
        ]
        IngestRunner(
            engine_runner_sources,
            EngineSink(ShardedQuantileEngine(EngineConfig()), None),
        )


def test_runner_config_validation() -> None:
    with pytest.raises(ConnectorError, match="batch_size"):
        RunnerConfig(batch_size=0).validate()
    with pytest.raises(ConnectorError, match="max_records"):
        RunnerConfig(max_records=0).validate()
    with pytest.raises(ConnectorError, match="checkpoint_every"):
        RunnerConfig(checkpoint_every=-1).validate()


def test_count_only_dlq_keeps_no_file(tmp_path, poison_file) -> None:
    runner = engine_runner(tmp_path, JsonlSource(poison_file))
    runner.run()
    assert runner.dlq.entries == 4
    assert list(tmp_path.glob("*.dlq")) == []
    assert not (tmp_path / "dlq.jsonl").exists()


def test_offset_store_guards_against_non_dict_positions() -> None:
    store = OffsetStore()
    with pytest.raises(ConnectorError, match="dict payload"):
        store.set("s", 42)
