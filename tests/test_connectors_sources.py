"""Source connectors: formats, poison tolerance, byte-exact resume."""

from __future__ import annotations

import pytest

from repro.connectors import (
    CsvSource,
    DirectorySource,
    JsonlSource,
    LinesSource,
    SyntheticSource,
    detect_format,
    open_source,
)
from repro.connectors.base import (
    ERR_BAD_JSON,
    ERR_BAD_ROW,
    ERR_BAD_TYPE,
    ERR_MISSING_FIELD,
)
from repro.errors import ConnectorError


def drain(source, position=None):
    return list(source.records(position))


# -- format detection ---------------------------------------------------------------


def test_detect_format_by_suffix() -> None:
    assert detect_format("a.jsonl") == "jsonl"
    assert detect_format("a.ndjson") == "jsonl"
    assert detect_format("a.csv") == "csv"
    assert detect_format("a.txt") == "lines"


def test_detect_format_unknown_suffix_names_the_options() -> None:
    with pytest.raises(ConnectorError, match="cannot infer a format"):
        detect_format("a.parquet")


def test_open_source_rejects_unknown_format(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text("1\n")
    with pytest.raises(ConnectorError, match="unknown file format"):
        open_source(path, fmt="parquet")


# -- JSONL --------------------------------------------------------------------------


def test_jsonl_accepts_numbers_strings_and_objects(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('1\n2.5\n"7/2"\n{"value": 9}\n')
    records = drain(JsonlSource(path))
    assert [record.value for record in records] == [1, 2.5, "7/2", 9]
    assert all(record.ok for record in records)
    assert [record.index for record in records] == [0, 1, 2, 3]


def test_jsonl_poison_lines_become_coded_records_not_exceptions(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text(
        'nonsense\n{"other": 1}\n{"value": true}\n{"value": [1]}\n{"value": 2}\n'
    )
    records = drain(JsonlSource(path))
    assert [record.error for record in records] == [
        ERR_BAD_JSON,
        ERR_MISSING_FIELD,
        ERR_BAD_TYPE,
        ERR_BAD_TYPE,
        None,
    ]
    poisoned = records[0]
    assert poisoned.raw == "nonsense"
    assert poisoned.detail


def test_jsonl_custom_field(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('{"latency": 12}\n{"value": 99}\n')
    records = drain(JsonlSource(path, field="latency"))
    assert records[0].value == 12
    assert records[1].error == ERR_MISSING_FIELD


def test_jsonl_undecodable_bytes_dead_letter_as_bad_row(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_bytes(b"1\n\xff\xfe\n2\n")
    records = drain(JsonlSource(path))
    assert [record.error for record in records] == [None, ERR_BAD_ROW, None]


def test_jsonl_missing_file_raises_connector_error(tmp_path) -> None:
    source = JsonlSource(tmp_path / "gone.jsonl")
    with pytest.raises(ConnectorError, match="does not exist"):
        drain(source)


# -- resume and tailing -------------------------------------------------------------


def test_resume_from_any_record_yields_exactly_the_remainder(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text("".join(f'{{"value": {i}}}\n' for i in range(10)))
    source = JsonlSource(path)
    full = drain(source)
    for cut in range(len(full)):
        rest = drain(source, full[cut].position)
        assert [r.value for r in rest] == [r.value for r in full[cut + 1 :]]
        assert [r.index for r in rest] == [r.index for r in full[cut + 1 :]]


def test_tailing_a_grown_file_yields_only_the_appended_records(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('{"value": 1}\n')
    source = JsonlSource(path)
    first = drain(source)
    with open(path, "a") as handle:
        handle.write('{"value": 2}\n{"value": 3}\n')
    appended = drain(source, first[-1].position)
    assert [record.value for record in appended] == [2, 3]


def test_validate_position_flags_truncation_and_misalignment(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('{"value": 1}\n{"value": 2}\n')
    source = JsonlSource(path)
    size = path.stat().st_size
    assert source.validate_position(None) == []
    assert source.validate_position({"byte": size, "records": 2}) == []
    assert any(
        "beyond the end" in problem
        for problem in source.validate_position({"byte": size + 10, "records": 9})
    )
    assert any(
        "line boundary" in problem
        for problem in source.validate_position({"byte": 3, "records": 1})
    )


def test_lag_counts_unconsumed_bytes(tmp_path) -> None:
    path = tmp_path / "a.jsonl"
    path.write_text('{"value": 1}\n{"value": 2}\n')
    source = JsonlSource(path)
    records = drain(source)
    assert source.lag(None) == path.stat().st_size
    assert source.lag(records[-1].position) == 0


# -- CSV ----------------------------------------------------------------------------


def test_csv_indexed_column_reads_headerless_files(tmp_path) -> None:
    path = tmp_path / "a.csv"
    path.write_text("1,x\n2,y\n3,z\n")
    records = drain(CsvSource(path, column=0))
    assert [record.value for record in records] == ["1", "2", "3"]


def test_csv_named_column_consumes_the_header(tmp_path) -> None:
    path = tmp_path / "a.csv"
    path.write_text("latency,label\n10,a\n20,b\n")
    records = drain(CsvSource(path, column="latency"))
    assert [record.value for record in records] == ["10", "20"]


def test_csv_named_column_resume_does_not_skip_a_data_row(tmp_path) -> None:
    path = tmp_path / "a.csv"
    path.write_text("latency,label\n10,a\n20,b\n30,c\n")
    records = drain(CsvSource(path, column="latency"))
    resumed = drain(CsvSource(path, column="latency"), records[0].position)
    assert [record.value for record in resumed] == ["20", "30"]


def test_csv_ragged_row_dead_letters_and_the_stream_continues(tmp_path) -> None:
    path = tmp_path / "a.csv"
    path.write_text("1,a\n2\n3,c\n")
    records = drain(CsvSource(path, column=1))
    assert [record.error for record in records] == [None, ERR_BAD_ROW, None]
    assert records[2].value == "c"


def test_csv_unknown_named_column_raises(tmp_path) -> None:
    path = tmp_path / "a.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(ConnectorError, match="not in the header"):
        drain(CsvSource(path, column="missing"))


# -- lines --------------------------------------------------------------------------


def test_lines_skips_blanks_and_comments(tmp_path) -> None:
    path = tmp_path / "a.txt"
    path.write_text("1\n\n# comment\n7/2\n")
    records = drain(LinesSource(path))
    assert [record.value for record in records] == ["1", "7/2"]


# -- directories --------------------------------------------------------------------


def test_directory_sweeps_files_in_sorted_order(tmp_path) -> None:
    (tmp_path / "b.jsonl").write_text('{"value": 3}\n')
    (tmp_path / "a.jsonl").write_text('{"value": 1}\n{"value": 2}\n')
    records = drain(DirectorySource(tmp_path))
    assert [record.value for record in records] == [1, 2, 3]
    assert [record.index for record in records] == [0, 1, 2]


def test_directory_resume_skips_consumed_and_picks_up_new_files(tmp_path) -> None:
    (tmp_path / "a.jsonl").write_text('{"value": 1}\n')
    source = DirectorySource(tmp_path)
    first = drain(source)
    with open(tmp_path / "a.jsonl", "a") as handle:
        handle.write('{"value": 2}\n')
    (tmp_path / "b.jsonl").write_text('{"value": 3}\n')
    appended = drain(source, first[-1].position)
    assert [record.value for record in appended] == [2, 3]
    assert [record.index for record in appended] == [1, 2]


def test_directory_lag_sums_per_file_remainders(tmp_path) -> None:
    (tmp_path / "a.jsonl").write_text('{"value": 1}\n')
    (tmp_path / "b.jsonl").write_text('{"value": 2}\n')
    source = DirectorySource(tmp_path)
    total = sum(path.stat().st_size for path in tmp_path.glob("*.jsonl"))
    assert source.lag(None) == total
    records = drain(source)
    assert source.lag(records[-1].position) == 0


def test_directory_missing_root_raises(tmp_path) -> None:
    with pytest.raises(ConnectorError, match="not a directory"):
        drain(DirectorySource(tmp_path / "gone"))


# -- synthetic ----------------------------------------------------------------------


def test_synthetic_is_deterministic_and_resumable() -> None:
    source = SyntheticSource(20, seed=7)
    full = [record.value for record in drain(source)]
    assert full == [record.value for record in drain(SyntheticSource(20, seed=7))]
    resumed = drain(source, {"records": 12})
    assert [record.value for record in resumed] == full[12:]


def test_synthetic_validate_position_rejects_overrun() -> None:
    source = SyntheticSource(5, seed=0)
    assert source.validate_position({"records": 5}) == []
    assert any(
        "exceeds" in problem
        for problem in source.validate_position({"records": 6})
    )
    assert source.lag({"records": 3}) == 2
