"""SortedItemList: unit tests plus a hypothesis model check vs sorted()."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers import SortedItemList


class TestBasics:
    def test_empty(self):
        sl = SortedItemList()
        assert len(sl) == 0
        assert list(sl) == []
        assert 1 not in sl

    def test_initial_values_are_sorted(self):
        sl = SortedItemList([3, 1, 2])
        assert list(sl) == [1, 2, 3]

    def test_add_keeps_order(self):
        sl = SortedItemList()
        for value in [5, 1, 4, 2, 3]:
            sl.add(value)
        assert list(sl) == [1, 2, 3, 4, 5]

    def test_duplicates_allowed(self):
        sl = SortedItemList([2, 2, 1])
        sl.add(2)
        assert list(sl) == [1, 2, 2, 2]

    def test_contains(self):
        sl = SortedItemList([1, 3, 5])
        assert 3 in sl
        assert 2 not in sl

    def test_getitem(self):
        sl = SortedItemList([10, 30, 20])
        assert sl[0] == 10
        assert sl[1] == 20
        assert sl[2] == 30

    def test_getitem_negative(self):
        sl = SortedItemList([1, 2, 3])
        assert sl[-1] == 3
        assert sl[-3] == 1

    def test_getitem_out_of_range(self):
        sl = SortedItemList([1])
        with pytest.raises(IndexError):
            sl[1]
        with pytest.raises(IndexError):
            sl[-2]

    def test_load_validation(self):
        with pytest.raises(ValueError):
            SortedItemList(load=1)


class TestBisect:
    def test_bisect_left_and_right(self):
        sl = SortedItemList([1, 2, 2, 3])
        assert sl.bisect_left(2) == 1
        assert sl.bisect_right(2) == 3
        assert sl.bisect_left(0) == 0
        assert sl.bisect_right(99) == 4

    def test_count_less_alias(self):
        sl = SortedItemList([1, 2, 3])
        assert sl.count_less(3) == sl.bisect_left(3) == 2

    def test_index_leftmost(self):
        sl = SortedItemList([1, 2, 2, 3])
        assert sl.index(2) == 1

    def test_index_missing(self):
        sl = SortedItemList([1, 3])
        with pytest.raises(ValueError):
            sl.index(2)


class TestRemove:
    def test_remove_existing(self):
        sl = SortedItemList([1, 2, 3])
        sl.remove(2)
        assert list(sl) == [1, 3]

    def test_remove_one_duplicate_only(self):
        sl = SortedItemList([2, 2])
        sl.remove(2)
        assert list(sl) == [2]

    def test_remove_missing_raises(self):
        sl = SortedItemList([1])
        with pytest.raises(ValueError):
            sl.remove(9)

    def test_remove_empties_chunk(self):
        sl = SortedItemList([5], load=4)
        sl.remove(5)
        assert len(sl) == 0
        sl.add(7)
        assert list(sl) == [7]


class TestChunking:
    def test_splitting_with_tiny_load(self):
        sl = SortedItemList(load=4)
        for value in range(100):
            sl.add(value)
        assert list(sl) == list(range(100))
        assert len(sl._chunks) > 1

    def test_interleaved_adds_with_tiny_load(self):
        sl = SortedItemList(load=4)
        for value in range(0, 100, 2):
            sl.add(value)
        for value in range(1, 100, 2):
            sl.add(value)
        assert list(sl) == list(range(100))

    def test_rank_queries_across_chunks(self):
        sl = SortedItemList(range(0, 1000, 2), load=8)
        assert sl.bisect_left(500) == 250
        assert sl.bisect_left(501) == 251
        assert sl[250] == 500


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50)))
def test_model_matches_sorted_reference(values):
    sl = SortedItemList(load=4)
    for value in values:
        sl.add(value)
    reference = sorted(values)
    assert list(sl) == reference
    assert len(sl) == len(reference)
    for probe in range(-55, 56, 7):
        assert sl.bisect_left(probe) == sum(1 for v in reference if v < probe)
        assert sl.bisect_right(probe) == sum(1 for v in reference if v <= probe)
    for position in range(len(reference)):
        assert sl[position] == reference[position]


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(min_value=-20, max_value=20), min_size=1),
    st.data(),
)
def test_model_with_removals(values, data):
    sl = SortedItemList(values, load=4)
    reference = sorted(values)
    removals = data.draw(
        st.lists(st.sampled_from(values), max_size=len(values), unique=False)
    )
    for value in removals:
        if value in reference:
            reference.remove(value)
            sl.remove(value)
    assert list(sl) == reference
