"""AdvStrategy (Pseudocode 2): structure, invariants, parametrized summaries."""

import pytest

from repro.core.adversary import build_adversarial_pair
from repro.errors import AdversaryError
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy
from repro.summaries.kll import KLL
from repro.summaries.mrl import MRL


FACTORIES = {
    "gk": lambda eps: GreenwaldKhanna(eps),
    "gk-greedy": lambda eps: GreenwaldKhannaGreedy(eps),
    "exact": lambda eps: ExactSummary(eps),
    "capped": lambda eps: CappedSummary(eps, budget=10),
    "kll-seeded": lambda eps: KLL(eps, seed=0),
    "mrl": lambda eps: MRL(eps, n_hint=4096),
}


class TestStructure:
    def test_stream_length_is_nk(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=4)
        assert result.length == round((1 / (1 / 8)) * 2**4)

    def test_recursion_tree_node_count(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=4)
        assert len(result.nodes()) == 2**4 - 1

    def test_leaf_count_and_sizes(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=4)
        leaves = [node for node in result.nodes() if node.left is None]
        assert len(leaves) == 2**3
        assert all(leaf.appended == result.leaf_size for leaf in leaves)

    def test_internal_nodes_have_refinements(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=3)
        for node in result.nodes():
            if node.left is not None:
                assert node.refine is not None
                assert node.right is not None
            else:
                assert node.refine is None

    def test_node_appended_doubles_per_level(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=4)
        for node in result.nodes():
            assert node.appended == result.leaf_size * 2 ** (node.level - 1)

    def test_custom_leaf_size(self):
        result = build_adversarial_pair(
            GreenwaldKhanna, epsilon=1 / 8, k=3, leaf_size=6
        )
        assert result.length == 6 * 2**2

    def test_on_leaf_callback_called_per_leaf(self):
        seen = []
        build_adversarial_pair(
            GreenwaldKhanna,
            epsilon=1 / 8,
            k=3,
            on_leaf=lambda pair, index: seen.append((index, pair.length)),
        )
        assert [index for index, _ in seen] == [1, 2, 3, 4]
        assert [length for _, length in seen] == [16, 32, 48, 64]

    def test_validation_errors(self):
        with pytest.raises(AdversaryError):
            build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=0)
        with pytest.raises(AdversaryError):
            build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=2, leaf_size=1)


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestInvariantsAcrossSummaries:
    def test_construction_runs_with_validation(self, name):
        # validate=True checks indistinguishability at every node and
        # Observation 1 at every refinement; completing without raising is
        # the assertion.
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 16, k=4)
        assert result.length == 16 * 2**4

    def test_gaps_positive_and_bounded_by_length(self, name):
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 16, k=4)
        for node in result.nodes():
            assert 1 <= node.gap <= result.length

    def test_gap_monotone_up_the_tree(self, name):
        # Claim 1 implies a parent's gap is at least each child's gap minus
        # slack; the weaker sanity property g >= g'' (the right child refines
        # *within* the parent's intervals) must hold exactly.
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 16, k=4)
        for node in result.nodes():
            if node.right is not None:
                assert node.gap >= node.right.gap

    def test_space_within_interval_bounds(self, name):
        # Ever-stored (monotone accounting) dominates the current restricted
        # array size at every node.
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 16, k=4)
        for node in result.nodes():
            assert node.space >= node.space_current >= 0

    def test_rank_alignment_of_stored_items(self, name):
        # The construction keeps rank_pi(I_pi[i]) <= rank_rho(I_rho[i])
        # (Section 4.6, final observation).
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 16, k=4)
        array_pi, array_rho = result.pair.item_arrays()
        for item_pi, item_rho in zip(array_pi, array_rho):
            assert result.pair.stream_pi.rank(item_pi) <= result.pair.stream_rho.rank(
                item_rho
            )


class TestDeterminism:
    def test_same_summary_same_trace(self):
        first = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=4)
        second = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=4)
        assert [n.gap for n in first.nodes()] == [n.gap for n in second.nodes()]
        assert first.max_items_stored() == second.max_items_stored()
