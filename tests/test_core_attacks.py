"""Failing-quantile witnesses (Lemma 3.4's proof, executed)."""

from fractions import Fraction

import pytest

from repro.core.adversary import build_adversarial_pair
from repro.core.attacks import find_failing_quantile, probe_quantile, verify_gap_bound
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy


class TestSurvivors:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda eps: GreenwaldKhanna(eps),
            lambda eps: GreenwaldKhannaGreedy(eps),
            lambda eps: ExactSummary(eps),
        ],
    )
    def test_correct_summaries_yield_no_witness(self, factory):
        result = build_adversarial_pair(factory, epsilon=1 / 16, k=5)
        assert find_failing_quantile(result) is None
        verify_gap_bound(result)  # does not raise


class TestDefeated:
    @pytest.mark.parametrize("budget", [8, 16, 32])
    def test_capped_summaries_yield_witness(self, budget):
        result = build_adversarial_pair(
            CappedSummary, epsilon=1 / 16, k=5, budget=budget
        )
        witness = find_failing_quantile(result)
        assert witness is not None
        assert witness.failed
        assert witness.failing_stream in ("pi", "rho", "both")
        assert 0 <= witness.phi <= 1

    def test_witness_error_exceeds_allowance(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        witness = find_failing_quantile(result)
        assert max(witness.error_pi, witness.error_rho) > witness.allowed_error

    def test_witness_answers_are_stored_items(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        witness = find_failing_quantile(result)
        assert witness.answer_pi in result.pair.summary_pi.item_array()
        assert witness.answer_rho in result.pair.summary_rho.item_array()

    def test_verify_gap_bound_raises_for_defeated(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        with pytest.raises(AssertionError, match="Lemma 3.4"):
            verify_gap_bound(result)

    def test_smaller_budget_larger_failure(self):
        errors = []
        for budget in (8, 64):
            result = build_adversarial_pair(
                CappedSummary, epsilon=1 / 16, k=5, budget=budget
            )
            witness = find_failing_quantile(result)
            errors.append(max(witness.error_pi, witness.error_rho))
        assert errors[0] > errors[1]


class TestProbe:
    def test_probe_reports_both_streams(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=4)
        witness = probe_quantile(result, Fraction(1, 2))
        assert witness.phi == Fraction(1, 2)
        assert witness.error_pi <= witness.allowed_error
        assert witness.error_rho <= witness.allowed_error
        assert not witness.failed
        assert witness.failing_stream == "none"

    def test_probe_target_rank(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=4)
        witness = probe_quantile(result, Fraction(1, 4))
        assert witness.target_rank == Fraction(result.length, 4)
