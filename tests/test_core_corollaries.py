"""Section 6 corollaries: median, rank estimation, randomized, biased."""

import pytest

from repro.core.adversary import build_adversarial_pair
from repro.core.biased_attack import biased_attack
from repro.core.median import median_attack
from repro.core.randomized import attack_seeded_summary, kll_space_curve
from repro.core.rank_attack import rank_attack
from repro.summaries.biased import BiasedQuantileSummary
from repro.summaries.capped import CappedSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.summaries.kll import KLL


class TestMedianAttack:
    def test_correct_summary_hits_space_branch(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=5)
        outcome = median_attack(result)
        assert outcome.outcome == "space"
        assert outcome.appended == 0
        assert outcome.items_stored > 0
        assert not outcome.failed_median

    def test_small_summary_fails_median(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        outcome = median_attack(result)
        assert outcome.outcome == "median-failure"
        assert outcome.failed_median
        assert outcome.appended > 0
        assert outcome.final_length == outcome.original_length + outcome.appended

    def test_appended_items_bounded_by_n(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        outcome = median_attack(result)
        assert outcome.appended <= outcome.original_length

    def test_streams_remain_indistinguishable_after_append(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        median_attack(result)
        result.pair.check_indistinguishable()


class TestQuantileAttackGeneralisation:
    """Theorem 6.1's 'similarly for any other phi-quantile' remark."""

    @pytest.mark.parametrize("numerator,denominator", [(1, 4), (1, 3), (2, 3), (3, 4)])
    def test_arbitrary_target_quantile_fails_for_small_summary(
        self, numerator, denominator
    ):
        from fractions import Fraction

        from repro.core.median import quantile_attack

        result = build_adversarial_pair(CappedSummary, epsilon=1 / 32, k=5, budget=8)
        outcome = quantile_attack(result, Fraction(numerator, denominator))
        assert outcome.outcome == "quantile-failure"
        assert outcome.failed_median  # the generic failure predicate
        assert outcome.final_length == outcome.original_length + outcome.appended

    def test_correct_summary_space_branch_any_phi(self):
        from fractions import Fraction

        from repro.core.median import quantile_attack

        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=5)
        outcome = quantile_attack(result, Fraction(1, 4))
        assert outcome.outcome == "space"

    def test_phi_target_validated(self):
        from fractions import Fraction

        from repro.core.median import quantile_attack

        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=3, budget=8)
        with pytest.raises(ValueError):
            quantile_attack(result, Fraction(0))
        with pytest.raises(ValueError):
            quantile_attack(result, Fraction(1))

    def test_padding_lands_uncovered_region_on_target(self):
        from fractions import Fraction

        from repro.core.median import quantile_attack

        result = build_adversarial_pair(CappedSummary, epsilon=1 / 32, k=5, budget=8)
        phi_target = Fraction(1, 3)
        phi_uncovered_before = None
        gap_result = result.final_gap()
        index = gap_result.index
        phi_uncovered_before = Fraction(
            gap_result.ranks_rho[index] + gap_result.ranks_pi[index - 1],
            2 * result.length,
        )
        outcome = quantile_attack(result, phi_target)
        # The uncovered rank moved to ~phi_target of the extended stream.
        if phi_uncovered_before < phi_target:
            moved = (
                phi_uncovered_before * outcome.original_length + outcome.appended
            ) / outcome.final_length
        else:
            moved = (
                phi_uncovered_before * outcome.original_length
            ) / outcome.final_length
        assert abs(moved - phi_target) <= Fraction(1, outcome.original_length) * 2


class TestRankAttack:
    def test_correct_summary_estimates_within_tolerance(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=5)
        outcome = rank_attack(result)
        assert not outcome.failed
        assert outcome.error_pi <= outcome.allowed_error
        assert outcome.error_rho <= outcome.allowed_error

    def test_small_summary_fails_rank_estimation(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        outcome = rank_attack(result)
        assert outcome.failed

    def test_true_ranks_straddle_the_gap(self):
        result = build_adversarial_pair(CappedSummary, epsilon=1 / 16, k=5, budget=8)
        outcome = rank_attack(result)
        assert outcome.true_rank_rho - outcome.true_rank_pi >= outcome.gap - 2

    def test_probes_are_fresh_items(self):
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=4)
        outcome = rank_attack(result)
        assert outcome.probe_pi not in set(result.pair.stream_pi)
        assert outcome.probe_rho not in set(result.pair.stream_rho)


class TestRandomized:
    def test_undersized_seeded_kll_defeated_on_every_seed(self):
        outcomes = attack_seeded_summary(
            KLL, epsilon=1 / 16, k=5, seeds=(0, 1), summary_kwargs={"k": 8}
        )
        assert all(outcome.defeated for outcome in outcomes)

    def test_generous_seeded_kll_survives(self):
        outcomes = attack_seeded_summary(
            KLL, epsilon=1 / 16, k=4, seeds=(0,), summary_kwargs={"delta": 1e-8}
        )
        assert not outcomes[0].defeated

    def test_outcomes_deterministic_per_seed(self):
        first = attack_seeded_summary(
            KLL, epsilon=1 / 16, k=4, seeds=(3,), summary_kwargs={"k": 8}
        )[0]
        second = attack_seeded_summary(
            KLL, epsilon=1 / 16, k=4, seeds=(3,), summary_kwargs={"k": 8}
        )[0]
        assert first.gap == second.gap
        assert first.max_items_stored == second.max_items_stored

    def test_space_curve_monotone_in_delta(self):
        points = kll_space_curve(1 / 16, (1e-2, 1e-8, 1e-16), stream_length=4000)
        sizes = [point.max_items_stored for point in points]
        assert sizes[0] < sizes[-1]
        ks = [point.k_parameter for point in points]
        assert ks == sorted(ks)


class TestBiasedAttack:
    def test_phase_structure(self):
        result = biased_attack(BiasedQuantileSummary, epsilon=1 / 16, k=4)
        assert len(result.phases) == 4
        for index, phase in enumerate(result.phases, start=1):
            assert phase.phase == index
            assert phase.appended == 16 * 2 ** (index - 1) * 2
        assert result.length == sum(p.appended for p in result.phases)

    def test_biased_summary_retains_early_phases(self):
        result = biased_attack(BiasedQuantileSummary, epsilon=1 / 16, k=4)
        for phase in result.phases:
            # Theta(1/eps) per phase at the very least.
            assert phase.stored_at_stream_end >= 1 / (2 * (1 / 16))

    def test_uniform_gk_forgets_early_phases(self):
        biased_result = biased_attack(BiasedQuantileSummary, epsilon=1 / 16, k=4)
        uniform_result = biased_attack(GreenwaldKhanna, epsilon=1 / 16, k=4)
        first_biased = biased_result.phases[0].stored_at_stream_end
        first_uniform = uniform_result.phases[0].stored_at_stream_end
        assert first_uniform < first_biased

    def test_total_grows_superlinearly_in_k(self):
        totals = [
            biased_attack(BiasedQuantileSummary, epsilon=1 / 16, k=k).total_stored_at_end()
            for k in (2, 4)
        ]
        assert totals[1] > 2 * totals[0]

    def test_k_validation(self):
        from repro.errors import AdversaryError

        with pytest.raises(AdversaryError):
            biased_attack(BiasedQuantileSummary, epsilon=1 / 16, k=0)
