"""Gap machinery: restricted arrays, ranks, Definitions 3.3/5.1, Lemma 3.4."""

import pytest

from repro.core.gap import (
    full_stream_gap,
    gap_bound,
    gap_in_intervals,
    restricted_item_array,
    restricted_ranks,
)
from repro.core.pair import SummaryPair
from repro.streams import Stream
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import OpenInterval


class TestRestrictedItemArray:
    def test_unbounded_interval_returns_full_array(self, universe):
        items = universe.items([1, 2, 3])
        assert restricted_item_array(items, OpenInterval.unbounded()) == items

    def test_finite_boundaries_enclose(self, universe):
        lo, hi = universe.item(0), universe.item(10)
        inside = universe.items([3, 7])
        outside = universe.items([-5, 20])
        array = sorted(inside + outside)
        restricted = restricted_item_array(array, OpenInterval(lo, hi))
        assert restricted == [lo, *inside, hi]

    def test_boundaries_included_even_if_not_stored(self, universe):
        # The paper: "r_pi is the last item in the restricted item array,
        # even though it was discarded from the whole item array".
        lo, hi = universe.item(0), universe.item(10)
        restricted = restricted_item_array([], OpenInterval(lo, hi))
        assert restricted == [lo, hi]

    def test_half_bounded(self, universe):
        from repro.universe import POS_INFINITY

        lo = universe.item(0)
        inside = universe.items([5, 6])
        restricted = restricted_item_array(inside, OpenInterval(lo, POS_INFINITY))
        assert restricted == [lo, *inside]


class TestFigure1Numbers:
    def make_figure1_stream(self, universe):
        stream = Stream()
        lo, hi = universe.item(0), universe.item(130)
        inside = universe.items(range(10, 130, 10))
        stream.extend([lo, *inside, hi])
        return stream, lo, hi, inside

    def test_restricted_ranks_match_figure(self, universe):
        stream, lo, hi, inside = self.make_figure1_stream(universe)
        interval = OpenInterval(lo, hi)
        entries = [lo, inside[4], inside[9], hi]
        assert restricted_ranks(stream, interval, entries) == [1, 6, 11, 14]


class TestGapComputation:
    def feed_pair(self, universe, values):
        pair = SummaryPair(lambda: ExactSummary())
        for value in values:
            pair.feed(universe.item(value), universe.item(value + 10**6))
        return pair

    def test_exact_summary_gap_is_one(self, universe):
        pair = self.feed_pair(universe, range(50))
        assert full_stream_gap(pair).gap == 1

    def test_gap_requires_equal_sizes(self, universe):
        pair = SummaryPair(lambda: ExactSummary())
        pair.feed(universe.item(1), universe.item(2))
        # Sabotage: process one extra item into pi's summary only.
        pair.summary_pi.process(universe.item(3))
        with pytest.raises(ValueError, match="differ in size"):
            full_stream_gap(pair)

    def test_gap_requires_two_entries(self, universe):
        from repro.universe import POS_INFINITY

        pair = SummaryPair(lambda: ExactSummary())
        pair.feed(universe.item(1), universe.item(2))
        # An interval above everything with only one finite boundary yields a
        # single restricted entry.
        with pytest.raises(ValueError, match="at least two"):
            gap_in_intervals(
                pair,
                OpenInterval(universe.item(100), POS_INFINITY),
                OpenInterval(universe.item(100), POS_INFINITY),
            )

    def test_gap_result_reports_location(self, universe):
        pair = self.feed_pair(universe, range(10))
        result = full_stream_gap(pair)
        assert 1 <= result.index < 10
        assert result.item_pi in pair.summary_pi.item_array()
        assert result.item_rho in pair.summary_rho.item_array()

    def test_gap_with_gk_bounded_by_lemma(self, universe):
        pair = SummaryPair(lambda: GreenwaldKhanna(1 / 8))
        for value in range(400):
            pair.feed(universe.item(value), universe.item(3 * value + 10**6))
        result = full_stream_gap(pair)
        assert result.gap <= gap_bound(1 / 8, pair.length)

    def test_symmetric_orientation_considered(self, universe):
        # Build arrays where the backward orientation dominates: rho's items
        # sit at *lower* ranks than pi's.
        pair = SummaryPair(lambda: ExactSummary())
        # Same lengths, but craft via restricted interval trick is complex;
        # instead verify gap >= both orientations on a live pair.
        for value in range(30):
            pair.feed(universe.item(value), universe.item(value + 10**6))
        result = full_stream_gap(pair)
        ranks_pi, ranks_rho = result.ranks_pi, result.ranks_rho
        for i in range(len(ranks_pi) - 1):
            assert result.gap >= ranks_rho[i + 1] - ranks_pi[i]
            assert result.gap >= ranks_pi[i + 1] - ranks_rho[i]


class TestGapBound:
    def test_bound_formula(self):
        assert gap_bound(1 / 8, 1000) == 250
        assert gap_bound(0.5, 10) == 10
