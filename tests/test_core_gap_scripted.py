"""Gap/refine machinery against a scripted summary with hand-computed values.

The scripted summary keeps every j-th *arrival* — a decision based only on
counters in G, so it is a legitimate deterministic comparison-based summary
— which makes every rank, gap and refined interval computable by hand.
"""

import pytest

from repro.core.gap import full_stream_gap, gap_in_intervals
from repro.core.pair import SummaryPair
from repro.core.refine import refine_intervals
from repro.model.summary import QuantileSummary
from repro.universe import OpenInterval, key_of
from repro.universe.item import Item


class ScriptedSummary(QuantileSummary):
    """Keeps arrivals number 1, 1+j, 1+2j, ... (1-based), nothing else."""

    name = "scripted"

    def __init__(self, epsilon: float = 0.25, keep_every: int = 5) -> None:
        super().__init__(epsilon)
        self.keep_every = keep_every
        self._kept: list[Item] = []

    def _insert(self, item: Item) -> None:
        if self._n % self.keep_every == 0:
            self._kept.append(item)
            self._kept.sort()

    def _query(self, phi: float) -> Item:
        index = min(len(self._kept) - 1, int(phi * len(self._kept)))
        return self._kept[index]

    def item_array(self) -> list[Item]:
        return list(self._kept)

    def fingerprint(self) -> tuple:
        return (self.name, self._n, self.keep_every, len(self._kept))


@pytest.fixture
def scripted_pair(universe):
    pair = SummaryPair(lambda: ScriptedSummary(keep_every=5))
    for value in range(1, 13):  # arrivals 1..12, increasing
        pair.feed(universe.item(value), universe.item(value + 100))
    return pair


class TestHandComputedGaps:
    def test_kept_positions(self, scripted_pair):
        array_pi, array_rho = scripted_pair.item_arrays()
        assert [key_of(i) for i in array_pi] == [1, 6, 11]
        assert [key_of(i) for i in array_rho] == [101, 106, 111]

    def test_full_stream_gap_is_five(self, scripted_pair):
        result = full_stream_gap(scripted_pair)
        # rank_rho(106) - rank_pi(1) = 6 - 1 = 5; ties at the next pair.
        assert result.gap == 5
        assert result.index == 1
        assert result.ranks_pi == (1, 6, 11)
        assert result.ranks_rho == (1, 6, 11)

    def test_indistinguishability_holds(self, scripted_pair):
        scripted_pair.check_indistinguishable()

    def test_refined_intervals_exact(self, scripted_pair, universe):
        record = refine_intervals(
            scripted_pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        assert record.gap == 5
        assert record.index == 1
        # pi zooms between stored item 1 and its stream successor 2.
        assert key_of(record.new_interval_pi.lo) == 1
        assert key_of(record.new_interval_pi.hi) == 2
        # rho zooms between the predecessor of stored 106 (= 105) and 106.
        assert key_of(record.new_interval_rho.lo) == 105
        assert key_of(record.new_interval_rho.hi) == 106

    def test_restricted_gap_in_subinterval(self, scripted_pair, universe):
        # Restrict to (1, 11) for pi and (101, 111) for rho: the restricted
        # arrays are [1, 6, 11] / [101, 106, 111] (boundaries enclosed) with
        # restricted ranks 1, 6, 11 again, so the gap is unchanged.
        interval_pi = OpenInterval(universe.item(1), universe.item(11))
        interval_rho = OpenInterval(universe.item(101), universe.item(111))
        result = gap_in_intervals(scripted_pair, interval_pi, interval_rho)
        assert result.gap == 5

    def test_denser_script_smaller_gap(self, universe):
        pair = SummaryPair(lambda: ScriptedSummary(keep_every=2))
        for value in range(1, 13):
            pair.feed(universe.item(value), universe.item(value + 100))
        assert full_stream_gap(pair).gap == 2

    def test_sparser_script_larger_gap(self, universe):
        pair = SummaryPair(lambda: ScriptedSummary(keep_every=11))
        for value in range(1, 13):
            pair.feed(universe.item(value), universe.item(value + 100))
        # Kept arrivals 1 and 12: gap = rank(112) - rank(1) = 12 - 1 = 11.
        assert full_stream_gap(pair).gap == 11

    def test_gap_with_out_of_order_arrivals(self, universe):
        # Arrival order is not value order; ranks are still value ranks.
        pair = SummaryPair(lambda: ScriptedSummary(keep_every=3))
        for value in [7, 2, 9, 4, 1, 8]:
            pair.feed(universe.item(value), universe.item(value + 100))
        array_pi, _ = pair.item_arrays()
        # Kept arrivals: 7 (1st) and 4 (4th); sorted by value -> [4, 7].
        assert [key_of(i) for i in array_pi] == [4, 7]
        result = full_stream_gap(pair)
        # Ranks among {1,2,4,7,8,9}: 4 -> 3 and 7 -> 4, so the only adjacent
        # pair has gap 4 - 3 = 1 in both orientations.
        assert result.ranks_pi == (3, 4)
        assert result.gap == 1
