"""SummaryPair: feeding, position tracking, indistinguishability checks."""

import pytest

from repro.core.pair import SummaryPair
from repro.errors import IndistinguishabilityViolation
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import OpenInterval


def make_pair(factory=lambda: GreenwaldKhanna(1 / 8)) -> SummaryPair:
    return SummaryPair(factory)


class TestFeeding:
    def test_feed_advances_both_streams(self, universe):
        pair = make_pair()
        pair.feed(universe.item(1), universe.item(100))
        pair.feed(universe.item(2), universe.item(200))
        assert pair.length == 2
        assert pair.summary_pi.n == 2
        assert pair.summary_rho.n == 2

    def test_item_arrays_accessible(self, universe):
        pair = make_pair()
        for value in range(10):
            pair.feed(universe.item(value), universe.item(value + 1000))
        array_pi, array_rho = pair.item_arrays()
        assert len(array_pi) == len(array_rho) > 0


class TestIndistinguishability:
    def test_isomorphic_streams_pass(self, universe):
        pair = make_pair()
        for value in range(50):
            pair.feed(universe.item(value), universe.item(10 * value + 7))
        pair.check_indistinguishable()  # does not raise

    def test_diverging_orders_detected(self, universe):
        pair = make_pair()
        # pi sees increasing items, rho decreasing: memory states diverge.
        for value in range(64):
            pair.feed(universe.item(value), universe.item(-value))
        with pytest.raises(IndistinguishabilityViolation):
            pair.check_indistinguishable()

    def test_different_epsilons_detected(self, universe):
        calls = iter([1 / 8, 1 / 4, 1 / 8, 1 / 4] * 1000)

        def alternating_factory():
            return GreenwaldKhanna(next(calls))

        pair = SummaryPair(alternating_factory)
        for value in range(200):
            pair.feed(universe.item(value), universe.item(value * 3))
        with pytest.raises(IndistinguishabilityViolation):
            pair.check_indistinguishable()


class TestStorageAccounting:
    def test_ever_stored_monotone(self, universe):
        pair = make_pair()
        counts = []
        interval = OpenInterval.unbounded()
        for value in range(120):
            pair.feed(universe.item(value), universe.item(value + 10**6))
            counts.append(pair.ever_stored_in(interval, "pi"))
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_ever_stored_at_least_current(self, universe):
        pair = make_pair()
        for value in range(300):
            pair.feed(universe.item(value), universe.item(value + 10**6))
        interval = OpenInterval.unbounded()
        current = len(pair.summary_pi.item_array())
        assert pair.ever_stored_in(interval, "pi") >= current

    def test_ever_stored_counts_finite_boundaries(self, universe):
        pair = make_pair()
        boundary_lo = universe.item(-5)
        boundary_hi = universe.item(1000)
        for value in range(20):
            pair.feed(universe.item(value), universe.item(value + 10**6))
        interval = OpenInterval(boundary_lo, boundary_hi)
        unbounded_count = pair.ever_stored_in(OpenInterval.unbounded(), "pi")
        bounded_count = pair.ever_stored_in(interval, "pi")
        assert bounded_count == unbounded_count + 2

    def test_max_items_stored(self, universe):
        pair = make_pair()
        for value in range(100):
            pair.feed(universe.item(value), universe.item(value + 10**6))
        assert pair.max_items_stored() >= len(pair.summary_pi.item_array())
