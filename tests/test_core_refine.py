"""RefineIntervals (Pseudocode 1): gap location, new intervals, Observation 1."""

import pytest

from repro.core.pair import SummaryPair
from repro.core.refine import refine_intervals
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import OpenInterval


def fed_pair(universe, factory, count=64, offset=10**6):
    pair = SummaryPair(factory)
    for value in range(1, count + 1):
        pair.feed(universe.item(value), universe.item(value + offset))
    return pair


class TestRefinement:
    def test_new_intervals_nested_in_old(self, universe):
        pair = fed_pair(universe, lambda: GreenwaldKhanna(1 / 8))
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        assert record.new_interval_pi.lo_is_item
        assert record.new_interval_pi.hi_is_item
        assert record.new_interval_rho.lo_is_item
        assert record.new_interval_rho.hi_is_item

    def test_new_intervals_are_empty_of_stream_items(self, universe):
        pair = fed_pair(universe, lambda: GreenwaldKhanna(1 / 8))
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        assert pair.stream_pi.count_in(record.new_interval_pi) == 0
        assert pair.stream_rho.count_in(record.new_interval_rho) == 0

    def test_pi_interval_hugs_left_extreme(self, universe):
        # The pi interval starts at the stored anchor item itself.
        pair = fed_pair(universe, lambda: CappedSummary(1 / 8, budget=6))
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        anchor = record.restricted_pi[record.index - 1]
        assert record.new_interval_pi.lo == anchor
        # and ends at the anchor's immediate stream successor:
        successor = pair.stream_pi.next_item(anchor)
        assert record.new_interval_pi.hi == successor

    def test_rho_interval_hugs_right_extreme(self, universe):
        pair = fed_pair(universe, lambda: CappedSummary(1 / 8, budget=6))
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        anchor = record.restricted_rho[record.index]
        assert record.new_interval_rho.hi == anchor
        predecessor = pair.stream_rho.prev_item(anchor)
        assert record.new_interval_rho.lo == predecessor

    def test_gap_matches_reported_index(self, universe):
        pair = fed_pair(universe, lambda: CappedSummary(1 / 8, budget=6))
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        i = record.index
        assert record.gap == record.ranks_rho[i] - record.ranks_pi[i - 1]
        for j in range(1, len(record.ranks_pi)):
            assert record.gap >= record.ranks_rho[j] - record.ranks_pi[j - 1]

    def test_exact_summary_gap_one(self, universe):
        pair = fed_pair(universe, lambda: ExactSummary(), count=20)
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        assert record.gap == 1

    def test_tie_breaks_to_smallest_index(self, universe):
        # The exact summary has gap 1 everywhere: index must be 1.
        pair = fed_pair(universe, lambda: ExactSummary(), count=10)
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded()
        )
        assert record.index == 1

    def test_requires_two_entries(self, universe):
        from repro.universe import POS_INFINITY

        pair = SummaryPair(lambda: ExactSummary())
        pair.feed(universe.item(1), universe.item(2))
        with pytest.raises(ValueError, match="fewer than two"):
            refine_intervals(
                pair,
                OpenInterval(universe.item(100), POS_INFINITY),
                OpenInterval(universe.item(100), POS_INFINITY),
            )

    def test_validation_can_be_disabled(self, universe):
        pair = fed_pair(universe, lambda: GreenwaldKhanna(1 / 8))
        record = refine_intervals(
            pair, OpenInterval.unbounded(), OpenInterval.unbounded(), validate=False
        )
        assert record.gap >= 1
