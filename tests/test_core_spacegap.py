"""Space-gap inequality (Lemma 5.2) and Claim 1 on real adversary traces."""

import math

import pytest

from repro.core.adversary import build_adversarial_pair
from repro.core.spacegap import (
    check_claim1,
    check_space_gap,
    claim1_violations,
    space_gap_constant,
    space_gap_rhs,
    space_gap_violations,
)
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy
from repro.summaries.kll import KLL

FACTORIES = {
    "gk": lambda eps: GreenwaldKhanna(eps),
    "gk-greedy": lambda eps: GreenwaldKhannaGreedy(eps),
    "exact": lambda eps: ExactSummary(eps),
    "capped-8": lambda eps: CappedSummary(eps, budget=8),
    "capped-32": lambda eps: CappedSummary(eps, budget=32),
    "kll-small": lambda eps: KLL(eps, k=8, seed=0),
}


class TestFormula:
    def test_constant(self):
        assert space_gap_constant(1 / 32) == pytest.approx(1 / 8 - 1 / 16)
        assert space_gap_constant(1 / 16) == pytest.approx(0)

    def test_rhs_decreasing_in_gap(self):
        epsilon, appended = 1 / 32, 2048
        values = [space_gap_rhs(epsilon, appended, g) for g in (2, 8, 64, 256)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_rhs_nonpositive_beyond_4_eps_n(self):
        epsilon, appended = 1 / 32, 1024
        assert space_gap_rhs(epsilon, appended, round(4 * epsilon * appended)) <= 0

    def test_rhs_at_lemma_34_gap_recovers_theorem(self):
        # At g = 2 eps N the RHS equals c (log2(2 eps N) + 1) / (4 eps):
        # the Theorem 2.2 bound.
        epsilon, appended = 1 / 32, 4096
        gap = round(2 * epsilon * appended)
        expected = (
            space_gap_constant(epsilon)
            * (math.log2(gap) + 1)
            / (4 * epsilon)
        )
        assert space_gap_rhs(epsilon, appended, gap) == pytest.approx(expected)

    def test_rhs_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            space_gap_rhs(1 / 32, 1024, 0)


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestOnRealTraces:
    def test_space_gap_inequality_everywhere(self, name):
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 32, k=5)
        assert space_gap_violations(result) == []

    def test_claim1_everywhere(self, name):
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 32, k=5)
        assert claim1_violations(result) == []

    def test_checks_cover_every_node(self, name):
        result = build_adversarial_pair(FACTORIES[name], epsilon=1 / 32, k=5)
        assert len(check_space_gap(result)) == 2**5 - 1
        assert len(check_claim1(result)) == 2**4 - 1


class TestLemma53:
    def test_no_violations_where_hypotheses_hold(self):
        from repro.core.spacegap import check_lemma53, lemma53_violations

        # Case 2 needs g in (2^7, 4 eps N_k): a *correct* summary at depth
        # k = 8 (gaps up to 2 eps N = 512 but inequality (4) failing at the
        # top nodes).  Lossy summaries blow past 4 eps N and land in Case 1
        # everywhere, so GK is the right subject here.
        result = build_adversarial_pair(
            GreenwaldKhanna, epsilon=1 / 32, k=8, validate=False
        )
        applicable = check_lemma53(result)
        assert applicable, "expected Case-2 nodes with g > 2^7"
        assert lemma53_violations(result) == []

    def test_vacuous_for_small_gaps(self):
        from repro.core.spacegap import check_lemma53

        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 32, k=4)
        # GK keeps every gap at most 2 eps N = 64 < 2^7: no applicable nodes.
        assert check_lemma53(result) == []


class TestTheoremConclusion:
    def test_correct_summary_pays_the_bound_at_root(self):
        # Lemma 3.4 caps the gap at 2 eps N; plugging into Lemma 5.2 yields
        # the Theorem 2.2 storage bound, which GK's measured S_k must meet.
        epsilon, k = 1 / 32, 6
        result = build_adversarial_pair(GreenwaldKhanna, epsilon=epsilon, k=k)
        n = result.length
        gap = result.root.gap
        assert gap <= 2 * epsilon * n
        theorem_bound = (
            space_gap_constant(epsilon) * (math.log2(2 * epsilon * n) + 1) / (4 * epsilon)
        )
        assert result.root.space >= theorem_bound

    def test_space_grows_with_k_for_gk(self):
        epsilon = 1 / 32
        spaces = [
            build_adversarial_pair(GreenwaldKhanna, epsilon=epsilon, k=k).root.space
            for k in (2, 4, 6)
        ]
        assert spaces[0] < spaces[1] < spaces[2]
