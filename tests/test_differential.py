"""Differential testing: every summary against the exact oracle."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import random_stream, sorted_stream, zoomin_stream
from repro.summaries.biased import BiasedQuantileSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy
from repro.summaries.kll import KLL
from repro.summaries.mrl import MRL
from repro.universe import Universe

# (factory, error budget as a multiple of eps*n) — randomized entries are
# seeded, so budgets are deterministic facts, not probabilistic hopes.
CONTENDERS = [
    ("gk", lambda eps, n: GreenwaldKhanna(eps), 1.0),
    ("gk-greedy", lambda eps, n: GreenwaldKhannaGreedy(eps), 1.0),
    ("mrl", lambda eps, n: MRL(eps, n_hint=n), 1.0),
    ("kll", lambda eps, n: KLL(eps, delta=1e-6, seed=0), 1.0),
    ("biased", lambda eps, n: BiasedQuantileSummary(eps), 1.0),
]

GENERATORS = {
    "random": lambda u, n: random_stream(u, n, seed=12),
    "sorted": sorted_stream,
    "zoomin": zoomin_stream,
}


@pytest.mark.parametrize("order", sorted(GENERATORS))
@pytest.mark.parametrize("name,factory,budget", CONTENDERS)
class TestQuantilesAgainstOracle:
    def test_all_grid_queries_within_budget(self, order, name, factory, budget):
        epsilon, n = 1 / 16, 1500
        universe = Universe()
        items = GENERATORS[order](universe, n)
        oracle = ExactSummary()
        subject = factory(epsilon, n)
        for item in items:
            oracle.process(item)
            subject.process(item)
        for j in range(33):
            phi = j / 32
            exact_rank = oracle.estimate_rank(subject.query(phi))
            target = max(1, min(n, round(phi * n)))
            assert abs(exact_rank - target) <= budget * epsilon * n + 1, (
                f"{name} on {order}: phi={phi}"
            )


@pytest.mark.parametrize("name,factory,budget", CONTENDERS)
class TestRankEstimatesAgainstOracle:
    def test_rank_estimates_track_oracle(self, name, factory, budget):
        epsilon, n = 1 / 16, 1200
        universe = Universe()
        items = random_stream(universe, n, seed=3)
        oracle = ExactSummary()
        subject = factory(epsilon, n)
        for item in items:
            oracle.process(item)
            subject.process(item)
        for value in range(0, n + 1, 97):
            probe = universe.item(Fraction(value) + Fraction(1, 2))
            exact = oracle.estimate_rank(probe)
            estimate = subject.estimate_rank(probe)
            assert abs(estimate - exact) <= budget * epsilon * n + 1, (
                f"{name}: probe at {value}"
            )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=5, max_value=500),
)
def test_gk_variants_differential_property(seed, n):
    """Band-based and greedy GK answer within eps of the oracle and of each
    other's allowance on arbitrary random streams."""
    epsilon = Fraction(1, 8)
    universe = Universe()
    items = random_stream(universe, n, seed=seed)
    oracle = ExactSummary()
    band = GreenwaldKhanna(epsilon)
    greedy = GreenwaldKhannaGreedy(epsilon)
    for item in items:
        oracle.process(item)
        band.process(item)
        greedy.process(item)
    for j in range(9):
        phi = j / 8
        target = max(1, min(n, round(phi * n)))
        for subject in (band, greedy):
            rank = oracle.estimate_rank(subject.query(phi))
            assert abs(rank - target) <= epsilon * n + 1
