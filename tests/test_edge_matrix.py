"""Edge-case matrix: every registered summary under degenerate inputs."""

import pytest

from repro.errors import EmptySummaryError, InvalidQuantileError
from repro.model.registry import available_summaries, create_summary
from repro.universe import Universe, key_of


def make(name: str, epsilon: float = 1 / 8, n: int = 64):
    kwargs = {}
    if name in ("mrl", "sampled-gk"):
        kwargs["n_hint"] = max(n, 1)
    if name in ("qdigest", "turnstile"):
        kwargs["universe_bits"] = 10
    if name == "sliding-gk":
        kwargs["window"] = max(n, 1)
    return create_summary(name, epsilon, **kwargs)


ALL = sorted(available_summaries())
# q-digest and the dyadic turnstile structure hash values and need a bounded
# integer universe: they sit outside the comparison-based matrix.
COMPARISON_BASED = [name for name in ALL if name not in ("qdigest", "turnstile")]


@pytest.mark.parametrize("name", ALL)
class TestEmptyAndValidation:
    def test_empty_query_raises(self, name):
        with pytest.raises(EmptySummaryError):
            make(name).query(0.5)

    def test_phi_validation(self, name, universe):
        summary = make(name)
        summary.process(universe.item(1))
        with pytest.raises(InvalidQuantileError):
            summary.query(-0.01)
        with pytest.raises(InvalidQuantileError):
            summary.query(1.01)

    def test_epsilon_validation(self, name):
        with pytest.raises(ValueError):
            create_summary(name, 0.0)


@pytest.mark.parametrize("name", COMPARISON_BASED)
class TestDegenerateStreams:
    def test_single_item(self, name, universe):
        summary = make(name, n=1)
        only = universe.item(7)
        summary.process(only)
        for phi in (0.0, 0.5, 1.0):
            assert key_of(summary.query(phi)) == 7

    def test_two_items(self, name, universe):
        summary = make(name, n=2)
        summary.process_all(universe.items([10, 20]))
        assert key_of(summary.query(0.0)) in (10, 20)
        assert key_of(summary.query(1.0)) in (10, 20)

    def test_all_equal_items(self, name, universe):
        summary = make(name, n=50)
        summary.process_all(universe.items([3] * 50))
        assert key_of(summary.query(0.5)) == 3

    def test_monotone_then_query_extremes(self, name, universe):
        summary = make(name, n=100)
        summary.process_all(universe.items(range(1, 101)))
        low = key_of(summary.query(0.0))
        high = key_of(summary.query(1.0))
        assert low <= 1 + 100 * summary.epsilon + 1
        assert high >= 100 - 100 * summary.epsilon - 1

    def test_negative_and_fractional_values(self, name, universe):
        from fractions import Fraction

        summary = make(name, n=20)
        values = [Fraction(-7, 3), Fraction(-1, 2), 0, Fraction(1, 9), 5]
        summary.process_all(universe.items(values * 4))
        answer = summary.query(0.5)
        assert Fraction(-7, 3) <= key_of(answer) <= 5

    def test_max_item_count_monotone(self, name, universe):
        summary = make(name, n=200)
        peaks = []
        for item in universe.items(range(200)):
            summary.process(item)
            peaks.append(summary.max_item_count)
        assert peaks == sorted(peaks)


@pytest.mark.parametrize("name", COMPARISON_BASED)
class TestComplianceMatrix:
    def test_summary_is_model_compliant_end_to_end(self, name, universe):
        # Wrap in the Definition 2.1 monitor and drive a mixed workload:
        # completion without ModelViolation is the assertion.
        from repro.model.compliance import ComplianceMonitor
        from repro.streams import random_stream

        inner = make(name, n=300)
        monitored = ComplianceMonitor(inner)
        monitored.process_all(random_stream(Universe(), 300, seed=11))
        for phi in (0.0, 0.3, 0.5, 0.9, 1.0):
            monitored.query(phi)
        assert monitored.is_compliant


@pytest.mark.parametrize("name", COMPARISON_BASED)
class TestFingerprints:
    def test_fingerprint_hashable_and_stable(self, name, universe):
        summary = make(name, n=30)
        summary.process_all(universe.items(range(30)))
        first = summary.fingerprint()
        second = summary.fingerprint()
        assert hash(first) == hash(second)
        assert first == second

    def test_fingerprint_changes_as_stream_grows(self, name, universe):
        summary = make(name, n=40)
        summary.process_all(universe.items(range(20)))
        before = summary.fingerprint()
        summary.process_all(universe.items(range(100, 120)))
        assert summary.fingerprint() != before
