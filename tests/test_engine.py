"""The sharded quantile-aggregation engine (repro.engine)."""

import json
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineConfig,
    ShardedQuantileEngine,
    Telemetry,
    fold_balanced,
    fold_left,
    fold_shards,
    read_checkpoint,
    route_batch,
    shard_of,
)
from repro.engine.engine import as_fraction
from repro.errors import CheckpointError, EngineError
from repro.model.registry import create_summary
from repro.universe.item import key_of
from repro.universe.universe import Universe


def _values(n, seed=7, bound=10**6):
    rng = random.Random(seed)
    return [rng.randint(0, bound) for _ in range(n)]


class TestConfig:
    def test_defaults_validate(self):
        config = EngineConfig()
        assert config.validate() is config

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"summary": "nope"}, "unknown summary"),
            ({"summary": "qdigest"}, "no registered merge"),
            ({"shards": 0}, "shards"),
            ({"workers": -1}, "workers"),
            ({"batch_size": 0}, "batch_size"),
            ({"epsilon": 0.0}, "epsilon"),
            ({"epsilon": 1.5}, "epsilon"),
            ({"executor": "gpu"}, "executor"),
            ({"routing": "randomly"}, "routing"),
            ({"merge_strategy": "chaotic"}, "merge strategy"),
        ],
    )
    def test_bad_config_raises_engine_error(self, kwargs, fragment):
        with pytest.raises(EngineError, match=fragment):
            EngineConfig(**kwargs).validate()

    def test_payload_round_trip(self):
        config = EngineConfig(
            summary="kll", epsilon=0.02, shards=3, workers=2, executor="thread",
            routing="round-robin", merge_strategy="left", seed=9, batch_size=128,
        )
        assert EngineConfig.from_payload(config.to_payload()) == config

    def test_seeded_summaries_get_distinct_shard_seeds(self):
        config = EngineConfig(summary="kll", seed=100)
        assert config.shard_kwargs(0)["seed"] == 100
        assert config.shard_kwargs(3)["seed"] == 103

    def test_unseeded_summaries_get_no_seed_kwarg(self):
        config = EngineConfig(summary="gk", seed=100)
        assert "seed" not in config.shard_kwargs(0)


class TestRouting:
    def test_hash_routing_is_stable_and_in_range(self):
        for value in map(Fraction, _values(500)):
            index = shard_of(value, 7)
            assert 0 <= index < 7
            assert shard_of(value, 7) == index

    def test_hash_routing_spreads_values(self):
        buckets = route_batch([Fraction(v) for v in range(10_000)], 8, "hash", 0)
        counts = [len(bucket) for bucket in buckets]
        assert min(counts) > 10_000 / 8 * 0.7

    def test_round_robin_continues_across_batches(self):
        values = [Fraction(v) for v in range(10)]
        whole = route_batch(values, 3, "round-robin", 0)
        first = route_batch(values[:4], 3, "round-robin", 0)
        second = route_batch(values[4:], 3, "round-robin", 4)
        combined = [a + b for a, b in zip(first, second)]
        assert combined == whole

    def test_unknown_routing_raises(self):
        with pytest.raises(ValueError, match="routing"):
            route_batch([], 2, "nope", 0)


class TestMergeTree:
    def _shards(self, count, per_shard=200):
        shards = []
        for index in range(count):
            universe = Universe()
            summary = create_summary("gk", 1 / 16)
            summary.process_all(
                universe.items(_values(per_shard, seed=index))
            )
            shards.append(summary)
        return shards

    def test_both_strategies_preserve_total_count(self):
        for count in (1, 2, 3, 5, 8):
            shards = self._shards(count)
            total = sum(shard.n for shard in shards)
            assert fold_left(shards).n == total
            assert fold_balanced(shards).n == total

    def test_single_shard_is_returned_unmerged(self):
        (shard,) = self._shards(1)
        assert fold_shards([shard]) is shard

    def test_merge_callback_counts_merges(self):
        shards = self._shards(5)
        calls = []
        fold_balanced(shards, on_merge=lambda: calls.append(1))
        assert len(calls) == 4  # k summaries always need k-1 merges

    def test_empty_fold_raises(self):
        with pytest.raises(ValueError):
            fold_shards([])

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="strategy"):
            fold_shards(self._shards(2), "sideways")


class TestTelemetry:
    def test_counters_and_latency_quantiles(self):
        telemetry = Telemetry()
        telemetry.count("widgets", 3)
        telemetry.count("widgets")
        for ns in range(1000, 2000, 10):
            telemetry.record_latency("op", ns)
        assert telemetry.counters["widgets"] == 4
        quantiles = telemetry.latency_quantiles("op")
        assert set(quantiles) == {"p50", "p90", "p99"}
        assert 1.0 <= quantiles["p50"] <= 2.0  # microseconds

    def test_snapshot_is_json_compatible(self):
        telemetry = Telemetry()
        telemetry.record_batch_size(100)
        telemetry.record_latency("ingest", 5000)
        json.dumps(telemetry.snapshot())

    def test_empty_operation_reports_empty(self):
        assert Telemetry().latency_quantiles("never") == {}

    def test_payload_round_trip_preserves_distributions(self):
        telemetry = Telemetry()
        telemetry.count("items", 42)
        for ns in range(0, 100_000, 97):
            telemetry.record_latency("op", ns)
            telemetry.record_batch_size(ns % 512)
        restored = Telemetry.from_payload(telemetry.to_payload())
        assert restored.counters == telemetry.counters
        assert restored.snapshot() == telemetry.snapshot()

    def test_timed_context_manager_records(self):
        telemetry = Telemetry()
        with telemetry.timed("block"):
            pass
        assert telemetry.snapshot()["latency_us"]["block"]["observations"] == 1


class TestEngineIngestAndQuery:
    def test_serial_ingest_partitions_every_item(self):
        engine = ShardedQuantileEngine(EngineConfig(summary="gk", shards=4))
        report = engine.ingest(_values(5000))
        assert report.items == 5000
        assert sum(report.shard_counts) == 5000
        assert engine.items_ingested == 5000

    def test_executors_agree_exactly(self):
        values = _values(6000)
        answers = []
        for executor, workers in (("serial", 1), ("thread", 4), ("processes", 2)):
            with ShardedQuantileEngine(
                EngineConfig(
                    summary="kll", shards=4, workers=workers,
                    executor=executor, seed=5, batch_size=1000,
                )
            ) as engine:
                engine.ingest(values)
                answers.append(engine.quantiles([0.1, 0.5, 0.9]))
        assert answers[0] == answers[1] == answers[2]

    def test_reruns_are_bit_identical(self):
        values = _values(3000)

        def fingerprints():
            engine = ShardedQuantileEngine(
                EngineConfig(summary="kll", shards=3, seed=2)
            )
            engine.ingest(values)
            return [shard.fingerprint() for shard in engine.shard_summaries]

        assert fingerprints() == fingerprints()

    def test_round_robin_balances_exactly(self):
        engine = ShardedQuantileEngine(
            EngineConfig(summary="gk", shards=4, routing="round-robin")
        )
        report = engine.ingest(_values(1000))
        assert report.shard_counts == [250, 250, 250, 250]

    def test_query_matches_unsharded_epsilon_bound(self):
        values = _values(8000)
        epsilon = 1 / 32
        engine = ShardedQuantileEngine(
            EngineConfig(summary="gk", epsilon=epsilon, shards=4)
        )
        engine.ingest(values)
        n = len(values)
        for phi in (0.01, 0.25, 0.5, 0.75, 0.99):
            answer = engine.query(phi)
            # the answer's exact rank is the interval [#(v < a) + 1, #(v <= a)]
            # under ties; an eps-approximate quantile's interval must come
            # within eps*n of phi*n
            below = sum(1 for v in values if v < answer)
            at_most = sum(1 for v in values if v <= answer)
            assert below - epsilon * n <= phi * n <= at_most + epsilon * n + 1, phi

    def test_rank_estimates_within_bound(self):
        values = _values(4000)
        n = len(values)
        engine = ShardedQuantileEngine(
            EngineConfig(summary="gk", epsilon=1 / 16, shards=4)
        )
        engine.ingest(values)
        for probe in (0, 250_000, 500_000, 999_999):
            below = sum(1 for v in values if v < probe)
            at_most = sum(1 for v in values if v <= probe)
            estimate = engine.rank(probe)
            assert below - n / 16 - 1 <= estimate <= at_most + n / 16 + 1

    def test_merged_summary_cache_invalidated_by_ingest(self):
        engine = ShardedQuantileEngine(EngineConfig(summary="gk", shards=2))
        engine.ingest(_values(100))
        first = engine.merged_summary()
        assert engine.merged_summary() is first
        engine.ingest(_values(100, seed=8))
        assert engine.merged_summary() is not first

    def test_float_and_string_inputs_are_normalised(self):
        engine = ShardedQuantileEngine(EngineConfig(summary="exact", shards=2))
        engine.ingest([0.1, "1/3", 2, Fraction(5, 7)])
        assert engine.items_ingested == 4
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_bad_batch_size_raises(self):
        engine = ShardedQuantileEngine()
        with pytest.raises(EngineError, match="batch_size"):
            engine.ingest([1, 2, 3], batch_size=0)

    def test_stats_shape(self):
        engine = ShardedQuantileEngine(EngineConfig(summary="gk", shards=2))
        engine.ingest(_values(500))
        engine.query(0.5)
        stats = engine.stats()
        json.dumps(stats)
        assert stats["items_ingested"] == 500
        assert len(stats["shards"]) == 2
        assert stats["telemetry"]["counters"]["queries_answered"] == 1
        assert "ingest_batch" in stats["telemetry"]["latency_us"]


class TestCheckpointRestore:
    def _engine(self, tmp_path, summary="kll"):
        engine = ShardedQuantileEngine(
            EngineConfig(summary=summary, shards=4, seed=3, batch_size=512)
        )
        engine.ingest(_values(4000))
        return engine

    @pytest.mark.parametrize("summary", ["gk", "kll", "exact"])
    def test_restore_answers_identically(self, tmp_path, summary):
        engine = self._engine(tmp_path, summary)
        path = tmp_path / "ck.jsonl"
        engine.checkpoint(path)
        restored = ShardedQuantileEngine.restore(path)
        phis = [0.05, 0.25, 0.5, 0.75, 0.95]
        assert restored.quantiles(phis) == engine.quantiles(phis)
        assert restored.items_ingested == engine.items_ingested
        assert [s.fingerprint() for s in restored.shard_summaries] == [
            s.fingerprint() for s in engine.shard_summaries
        ]

    def test_mid_run_checkpoint_then_resume_matches_straight_run(self, tmp_path):
        values = _values(6000)
        straight = ShardedQuantileEngine(
            EngineConfig(summary="kll", shards=4, seed=3)
        )
        straight.ingest(values)

        interrupted = ShardedQuantileEngine(
            EngineConfig(summary="kll", shards=4, seed=3)
        )
        interrupted.ingest(values[:2500])
        path = tmp_path / "mid.jsonl"
        interrupted.checkpoint(path)
        resumed = ShardedQuantileEngine.restore(path)
        resumed.ingest(values[2500:])
        phis = [0.1, 0.5, 0.9]
        assert resumed.quantiles(phis) == straight.quantiles(phis)

    def test_checkpoint_preserves_telemetry(self, tmp_path):
        engine = self._engine(tmp_path)
        engine.query(0.5)
        path = tmp_path / "ck.jsonl"
        engine.checkpoint(path)
        restored = ShardedQuantileEngine.restore(path)
        assert restored.telemetry.counters["items_ingested"] == 4000
        assert restored.telemetry.counters["restores"] == 1
        assert restored.telemetry.latency_quantiles("ingest_batch")

    def test_telemetry_snapshot_survives_the_checkpoint_file_exactly(self, tmp_path):
        engine = self._engine(tmp_path)
        engine.query(0.5)
        before = engine.telemetry.snapshot()
        path = tmp_path / "ck.jsonl"
        engine.checkpoint(path)
        reloaded = read_checkpoint(path)["telemetry"]
        assert reloaded.snapshot() == before
        # ... and re-serialising the reloaded state is byte-stable.
        assert json.dumps(reloaded.to_payload()) == json.dumps(
            Telemetry.from_payload(reloaded.to_payload()).to_payload()
        )

    def test_checkpoint_write_is_atomic(self, tmp_path):
        engine = self._engine(tmp_path)
        path = tmp_path / "ck.jsonl"
        engine.checkpoint(path)
        assert not path.with_name(path.name + ".tmp").exists()
        parts = read_checkpoint(path)
        assert parts["items_ingested"] == 4000

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            ShardedQuantileEngine.restore(tmp_path / "absent.jsonl")

    def test_truncated_checkpoint_raises(self, tmp_path):
        engine = self._engine(tmp_path)
        path = tmp_path / "ck.jsonl"
        engine.checkpoint(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")  # drop shards 2,3 + telemetry
        with pytest.raises(CheckpointError, match="missing shards"):
            read_checkpoint(path)

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(CheckpointError, match="JSONL"):
            read_checkpoint(path)

    def test_wrong_header_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(CheckpointError, match="header"):
            read_checkpoint(path)


class TestShardedGuaranteeProperty:
    """Satellite property: sharded answers stay within the merged bound.

    The engine's rank estimates must stay within ``epsilon * n`` of exact
    offline ranks (GK's merge keeps the max input epsilon), and the fold
    order — left fold vs balanced tree — must never affect whether the
    guarantee holds.
    """

    @settings(max_examples=15, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=50, max_size=400
        ),
        shards=st.integers(min_value=1, max_value=6),
        routing=st.sampled_from(["hash", "round-robin"]),
        data=st.data(),
    )
    def test_rank_within_epsilon_of_exact_for_both_fold_orders(
        self, values, shards, routing, data
    ):
        epsilon = 1 / 8
        n = len(values)
        ordered = sorted(values)
        probes = [ordered[0], ordered[n // 4], ordered[n // 2], ordered[-1]]
        for strategy in ("balanced", "left"):
            engine = ShardedQuantileEngine(
                EngineConfig(
                    summary="gk", epsilon=epsilon, shards=shards,
                    routing=routing, merge_strategy=strategy, batch_size=64,
                )
            )
            engine.ingest(values)
            for probe in probes:
                # under ties the exact rank is an interval; the estimate
                # must come within eps*n of it
                below = sum(1 for v in values if v < probe)
                at_most = sum(1 for v in values if v <= probe)
                estimate = engine.rank(probe)
                assert below - epsilon * n - 1 <= estimate, (
                    strategy, probe, estimate, below,
                )
                assert estimate <= at_most + epsilon * n + 1, (
                    strategy, probe, estimate, at_most,
                )

    @settings(max_examples=10, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=5_000), min_size=60, max_size=300
        ),
        shards=st.integers(min_value=2, max_value=5),
    )
    def test_quantile_answers_within_epsilon_rank_window(self, values, shards):
        epsilon = 1 / 8
        n = len(values)
        engine = ShardedQuantileEngine(
            EngineConfig(summary="gk", epsilon=epsilon, shards=shards)
        )
        engine.ingest(values)
        for phi in (0.1, 0.5, 0.9):
            answer = engine.query(phi)
            # an eps-approximate phi-quantile's exact rank interval (ties!)
            # must come within eps*n of phi*n (allow ceil slack for tiny n)
            below = sum(1 for v in values if v < answer)
            at_most = sum(1 for v in values if v <= answer)
            assert below - epsilon * n - 1 <= phi * n <= at_most + epsilon * n + 1

    def test_fold_orders_both_preserve_the_guarantee(self):
        # the merged tuple structure differs between fold shapes, but both
        # must keep every answer inside the eps rank window
        values = _values(2000)
        n = len(values)
        epsilon = 1 / 16
        for strategy in ("balanced", "left"):
            engine = ShardedQuantileEngine(
                EngineConfig(
                    summary="gk", epsilon=epsilon, shards=5,
                    merge_strategy=strategy,
                )
            )
            engine.ingest(values)
            assert engine.merged_summary().n == n
            for phi in (0.1, 0.3, 0.5, 0.7, 0.9):
                answer = engine.query(phi)
                below = sum(1 for v in values if v < answer)
                at_most = sum(1 for v in values if v <= answer)
                assert below - epsilon * n <= phi * n <= at_most + epsilon * n + 1
