"""Checkpoint → restore → continued ingest, plus input-validation hardening.

The centrepiece is the round-robin resumption guarantee: an engine restored
from a checkpoint must route every subsequent item to the *same* shard the
uninterrupted engine would have chosen, because routing continues from the
persisted lifetime item count.  The final shard states must be bit-identical
(compared via their persistence payloads) to a run that never stopped.
"""

import json
import math

import pytest

from repro.engine import EngineConfig, ShardedQuantileEngine
from repro.engine.engine import as_fraction
from repro.errors import EngineError
from repro.persistence import dump as dump_summary


def make_engine(routing: str = "round-robin", shards: int = 3) -> ShardedQuantileEngine:
    return ShardedQuantileEngine(
        EngineConfig(summary="gk", epsilon=0.05, shards=shards, routing=routing)
    )


def shard_payloads(engine: ShardedQuantileEngine) -> list[str]:
    """Canonical JSON per shard — the bit-identity yardstick."""
    return [
        json.dumps(dump_summary(summary), sort_keys=True)
        for summary in engine.shard_summaries
    ]


class TestRestoreContinuesRoundRobin:
    @pytest.mark.parametrize("split", [1, 250, 499, 500])
    def test_interrupted_run_matches_uninterrupted(self, tmp_path, split):
        values = list(range(1, 501))

        straight = make_engine()
        straight.ingest(values)

        interrupted = make_engine()
        interrupted.ingest(values[:split])
        path = tmp_path / "mid.jsonl"
        interrupted.checkpoint(path)

        restored = ShardedQuantileEngine.restore(path)
        assert restored.items_ingested == split
        restored.ingest(values[split:])

        assert restored.items_ingested == straight.items_ingested == 500
        assert shard_payloads(restored) == shard_payloads(straight)

    def test_restore_resumes_shard_assignment_from_lifetime_count(self, tmp_path):
        # 7 items over 3 shards: item 8 (index 7) must land on shard 1,
        # exactly as if ingest had never paused.
        engine = make_engine()
        engine.ingest(range(7))
        path = tmp_path / "seven.jsonl"
        engine.checkpoint(path)

        restored = ShardedQuantileEngine.restore(path)
        before = [summary.n for summary in restored.shard_summaries]
        restored.ingest([999])
        after = [summary.n for summary in restored.shard_summaries]
        grew = [i for i, (a, b) in enumerate(zip(before, after)) if b > a]
        assert grew == [7 % 3]

    def test_restored_engine_answers_identically(self, tmp_path):
        straight = make_engine()
        straight.ingest(range(1, 1001))

        interrupted = make_engine()
        interrupted.ingest(range(1, 401))
        path = tmp_path / "answers.jsonl"
        interrupted.checkpoint(path)
        restored = ShardedQuantileEngine.restore(path)
        restored.ingest(range(401, 1001))

        for phi in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert restored.query(phi) == straight.query(phi)
        assert restored.rank(500) == straight.rank(500)

    def test_hash_routing_also_survives_restore(self, tmp_path):
        values = [v * 7 % 1009 for v in range(600)]
        straight = make_engine(routing="hash")
        straight.ingest(values)

        interrupted = make_engine(routing="hash")
        interrupted.ingest(values[:200])
        path = tmp_path / "hash.jsonl"
        interrupted.checkpoint(path)
        restored = ShardedQuantileEngine.restore(path)
        restored.ingest(values[200:])

        assert shard_payloads(restored) == shard_payloads(straight)


class TestAsFractionErrors:
    @pytest.mark.parametrize("bad", ["abc", "1/0", "", "1.2.3", None, object()])
    def test_malformed_input_raises_engine_error_naming_the_value(self, bad):
        with pytest.raises(EngineError, match="cannot interpret"):
            as_fraction(bad)

    def test_nan_and_infinity_raise_engine_error(self):
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(EngineError, match="cannot interpret"):
                as_fraction(bad)

    def test_error_message_names_the_offending_value(self):
        with pytest.raises(EngineError, match="'1/0'"):
            as_fraction("1/0")

    def test_well_formed_inputs_still_convert(self):
        from fractions import Fraction

        assert as_fraction("7/2") == Fraction(7, 2)
        assert as_fraction(3) == Fraction(3)
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_bad_value_mid_batch_does_not_corrupt_the_engine(self):
        engine = make_engine()
        engine.ingest(range(10))
        with pytest.raises(EngineError):
            engine.ingest([10, "bogus", 12])
        # The failed batch is rejected atomically up-front or the engine
        # keeps serving; either way it must still answer queries.
        assert engine.query(0.5) is not None


class TestThroughputStats:
    def test_stats_expose_items_per_second(self):
        engine = make_engine()
        engine.ingest(range(1000))
        stats = engine.stats()
        throughput = stats["throughput"]
        assert throughput["ingest_seconds"] > 0
        assert throughput["items_per_second"] > 0

    def test_empty_engine_reports_no_throughput(self):
        stats = make_engine().stats()
        assert stats["throughput"]["items_per_second"] is None
