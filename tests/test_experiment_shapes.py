"""Expected-shape assertions for the remaining experiments (small params).

T2-T4 shapes are asserted in test_experiments.py; this file covers the
corollaries (T5-T8), the curve experiments (T1/T9 charts) and the ablations,
all at reduced sizes so the whole file stays fast.
"""

from repro.experiments import run_experiment


class TestCorollaryShapes:
    def test_t5_gk_space_branch_capped_failure_branch(self):
        (table,) = run_experiment("T5", epsilon=1 / 32, k=4, budgets=(8,))
        branches = dict(zip(table.column("summary"), table.column("branch")))
        failures = dict(zip(table.column("summary"), table.column("median failed")))
        assert branches["gk"] == "space"
        assert failures["gk"] == "no"
        assert branches["capped (8)"] == "median-failure"
        assert failures["capped (8)"] == "YES"

    def test_t6_shared_estimate_fails_one_side_only_for_capped(self):
        (table,) = run_experiment("T6", epsilon=1 / 32, k=4, budgets=(8,))
        outcomes = dict(zip(table.column("summary"), table.column("failed")))
        assert outcomes["gk"] == "no"
        assert outcomes["capped (8)"] == "YES"

    def test_t7_small_sketch_defeated_and_curve_monotone(self):
        attack, curve = run_experiment(
            "T7",
            epsilon=1 / 32,
            k=4,
            seeds=(0,),
            sketches=(("kll k=8", {"k": 8}), ("kll delta=1e-6", {"delta": 1e-6})),
            deltas=(1e-2, 1e-8),
            stream_length=3000,
        )
        verdicts = dict(zip(attack.column("sketch"), attack.column("defeated")))
        assert verdicts["kll k=8"] == "YES"
        assert verdicts["kll delta=1e-6"] == "no"
        sizes = [int(v) for v in curve.column("max |I|")]
        assert sizes[0] < sizes[-1]

    def test_t8_biased_dominates_uniform_and_grows(self):
        per_phase, totals = run_experiment("T8", epsilon=1 / 32, k=4)
        biased = [int(v) for v in per_phase.column("biased: retained")]
        uniform = [int(v) for v in per_phase.column("gk (uniform): retained")]
        assert biased == sorted(biased)
        assert all(b >= u for b, u in zip(biased[:-1], uniform[:-1]))
        totals_retained = [int(v) for v in totals.column("total retained")]
        biased_total, uniform_total = totals_retained[0], totals_retained[1]
        assert biased_total > uniform_total


class TestCurveCharts:
    def test_t1_returns_chart_with_three_series(self):
        tables = run_experiment("T1", epsilon=1 / 32, k_max=3)
        chart = tables[-1]
        text = chart.render()
        assert "gk measured" in text
        assert "gk upper bound" in text
        assert "thm 2.2 lower" in text

    def test_t9_chart_flat_vs_growing(self):
        tables = run_experiment("T9", epsilon=1 / 64, k_max=10)
        chart = tables[-1]
        text = chart.render()
        assert "hung-ting" in text
        assert "theorem 2.2" in text


class TestAblationShapes:
    def test_a2_smallest_policy_weakest(self):
        (table,) = run_experiment("A2", epsilon=1 / 16, k=4, budget=10)
        gaps = dict(
            zip(table.column("policy"), (int(v) for v in table.column("final gap")))
        )
        assert gaps["smallest"] <= gaps["largest (paper)"]

    def test_a3_monotone_in_depth(self):
        (table,) = run_experiment("A3", epsilon=1 / 16, total_log2=8, budget=10)
        gaps = [int(v) for v in table.column("final gap")]
        assert gaps[0] < gaps[-1]

    def test_a4_peak_grows_with_period(self):
        (table,) = run_experiment(
            "A4", epsilon=1 / 16, length=1200, multipliers=(1.0, 16.0)
        )
        peaks = [int(v) for v in table.column("peak |I|")]
        assert peaks[1] > peaks[0]

    def test_a5_merged_error_within_budget(self):
        (table,) = run_experiment("A5", epsilon=1 / 32, length=2048, shards=4)
        assert set(table.column("within budget")) == {"yes"}

    def test_a6_gk_space_similar_under_both_orders(self):
        _, space_table = run_experiment("A6", epsilon=1 / 16, k_values=(3, 4), budget=10)
        recursive = [int(v) for v in space_table.column("gk space (recursive)")]
        sequential = [int(v) for v in space_table.column("gk space (sequential)")]
        for rec, seq in zip(recursive, sequential):
            assert abs(rec - seq) <= 0.25 * max(rec, seq)

    def test_a7_every_comparison_identical(self):
        per_level, summary, _sample = run_experiment("A7", epsilon=1 / 8, k=4)
        assert set(per_level.column("identical")) == {"yes"}
        assert set(summary.column("identical")) == {"yes"}
