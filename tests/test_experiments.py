"""Experiment registry and each experiment's table output (small params)."""

import pytest

from repro.analysis.tables import Table
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment


class TestRegistry:
    def test_all_design_md_ids_present(self):
        expected = (
            {"F1", "F2"}
            | {f"T{i}" for i in range(1, 11)}
            | {f"A{i}" for i in range(1, 9)}
        )
        assert set(EXPERIMENTS) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("f1").id == "F1"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("T99")

    def test_specs_carry_paper_refs(self):
        for spec in EXPERIMENTS.values():
            assert spec.paper_ref
            assert spec.title


class TestF1:
    def test_reproduces_figure_numbers(self):
        tables = run_experiment("F1")
        ranks, gaps = tables[0], tables[1]
        assert ranks.column("rank w.r.t. pi") == ["1", "6", "11", "14"]
        assert ranks.column("rank w.r.t. rho") == ["1", "6", "11", "14"]
        gap_column = gaps.column("rank_rho(I'_rho[i+1]) - rank_pi(I'_pi[i])")
        assert gap_column == ["5", "5", "3"]
        assert gaps.column("is largest") == ["yes", "yes", "no"]


class TestF2:
    def test_panel_structure(self):
        panels, refinements, final, figure = run_experiment("F2")
        assert panels.column("panel") == ["a", "b", "c", "d"]
        assert panels.column("items sent") == ["12", "24", "36", "48"]
        assert refinements.column("items so far") == ["12", "24", "36"]

    def test_gaps_respect_lemma_bound(self):
        _, refinements, final, _figure = run_experiment("F2")
        gaps = [int(value) for value in refinements.column("largest gap")]
        bounds = [float(value) for value in refinements.column("2 eps N'")]
        assert all(gap <= bound for gap, bound in zip(gaps, bounds))
        assert int(final.column("final gap")[0]) <= float(final.column("2 eps N")[0])

    def test_figure_panels_render_both_streams(self):
        *_rest, figure = run_experiment("F2")
        text = figure.render()
        assert text.count("pi :") == 4
        assert text.count("rho:") == 4
        assert "|" in text and "x" in text


class TestSmallRuns:
    """Each experiment runs end-to-end with reduced parameters."""

    def assert_tables(self, tables):
        assert tables
        for table in tables:
            # Tables and charts share the render/to_markdown protocol.
            assert table.render()
            assert table.to_markdown()
            if isinstance(table, Table):
                assert table.rows

    def test_t1(self):
        self.assert_tables(run_experiment("T1", epsilon=1 / 32, k_max=3))

    def test_t2(self):
        self.assert_tables(run_experiment("T2", epsilon=1 / 32, k=3))

    def test_t3(self):
        self.assert_tables(run_experiment("T3", epsilon=1 / 32, k=3))

    def test_t4(self):
        self.assert_tables(run_experiment("T4", epsilon=1 / 32, k=3, budgets=(8, 16)))

    def test_t5(self):
        self.assert_tables(run_experiment("T5", epsilon=1 / 32, k=3, budgets=(8,)))

    def test_t6(self):
        self.assert_tables(run_experiment("T6", epsilon=1 / 32, k=3, budgets=(8,)))

    def test_t7(self):
        self.assert_tables(
            run_experiment(
                "T7",
                epsilon=1 / 32,
                k=3,
                seeds=(0,),
                sketches=(("kll k=8", {"k": 8}),),
                deltas=(1e-2, 1e-4),
                stream_length=2000,
            )
        )

    def test_t8(self):
        self.assert_tables(run_experiment("T8", epsilon=1 / 32, k=3))

    def test_t9(self):
        self.assert_tables(run_experiment("T9", epsilon=1 / 64, k_max=8))

    def test_t10(self):
        self.assert_tables(
            run_experiment("T10", epsilon=1 / 16, length=512, adversary_k=4)
        )


class TestExpectedShapes:
    def test_t2_correct_summaries_within_bound(self):
        (table,) = run_experiment("T2", epsilon=1 / 32, k=4)
        for claims, verdict in zip(
            table.column("claims correct"), table.column("within bound")
        ):
            if claims == "yes":
                assert verdict == "yes"

    def test_t3_zero_violations(self):
        table = run_experiment("T3", epsilon=1 / 32, k=4)[0]
        assert set(table.column("claim1 violations")) == {"0"}
        assert set(table.column("space-gap violations")) == {"0"}

    def test_t4_all_capped_defeated_gk_survives(self):
        (table,) = run_experiment("T4", epsilon=1 / 32, k=4, budgets=(8, 16))
        verdicts = dict(zip(table.column("summary"), table.column("defeated")))
        assert verdicts["capped (8)"] == "YES"
        assert verdicts["capped (16)"] == "YES"
        assert verdicts["gk (control)"] == "no"


class TestCli:
    def test_lists_without_args(self, capsys):
        from repro.experiments.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "T10" in out

    def test_runs_selected_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["F1"]) == 0
        out = capsys.readouterr().out
        assert "largest gap" in out.lower() or "Restricted" in out

    def test_markdown_output(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        target = tmp_path / "out.md"
        assert main(["F1", "--markdown", str(target)]) == 0
        assert "| entry |" in target.read_text()
