"""The ASCII real-line figure renderer."""

from repro.analysis.figures import (
    FigurePanel,
    render_pair_panel,
    render_stream_line,
)
from repro.core.pair import SummaryPair
from repro.streams import Stream
from repro.summaries.exact import ExactSummary
from repro.summaries.capped import CappedSummary
from repro.universe import OpenInterval


class TestStreamLine:
    def test_empty_stream(self, universe):
        assert "empty" in render_stream_line(Stream(), [])

    def test_all_stored_marks(self, universe):
        stream = Stream()
        items = universe.items([3, 1, 2])
        stream.extend(items)
        line = render_stream_line(stream, items, width=20)
        assert line.count("|") == 3
        assert "x" not in line

    def test_forgotten_marks(self, universe):
        stream = Stream()
        items = universe.items([1, 2, 3, 4])
        stream.extend(items)
        line = render_stream_line(stream, [items[0], items[3]], width=24)
        assert line.count("|") == 2
        assert line.count("x") == 2

    def test_marks_ordered_by_rank(self, universe):
        stream = Stream()
        items = universe.items([30, 10, 20])  # arrival order != rank order
        stream.extend(items)
        line = render_stream_line(stream, [items[1]], width=30)  # store key 10
        # The stored mark is the leftmost mark (rank 1).
        first_mark = min(line.index("|"), line.index("x"))
        assert line[first_mark] == "|"

    def test_interval_brackets(self, universe):
        stream = Stream()
        items = universe.items(range(1, 11))
        stream.extend(items)
        interval = OpenInterval(items[2], items[7])
        line = render_stream_line(stream, items, interval, width=60)
        assert "(" in line and ")" in line
        assert line.index("(") < line.index(")")

    def test_label_prefix(self, universe):
        stream = Stream()
        stream.append(universe.item(1))
        line = render_stream_line(stream, [], label="pi: ")
        assert line.startswith("pi: ")


class TestPairPanel:
    def test_both_streams_rendered(self, universe):
        pair = SummaryPair(lambda: ExactSummary())
        for value in range(10):
            pair.feed(universe.item(value), universe.item(value + 100))
        panel = render_pair_panel(pair, title="t")
        lines = panel.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("  pi :")
        assert lines[2].startswith("  rho:")

    def test_forgetting_summary_shows_crosses(self, universe):
        pair = SummaryPair(lambda: CappedSummary(0.1, budget=4))
        for value in range(30):
            pair.feed(universe.item(value), universe.item(value + 100))
        panel = render_pair_panel(pair)
        assert panel.count("x") > 10


class TestFigurePanelProtocol:
    def test_render_and_markdown(self):
        panel = FigurePanel("title", "body line")
        assert panel.render() == "title\nbody line"
        assert panel.to_markdown().startswith("**title**")
        assert "```" in panel.to_markdown()
