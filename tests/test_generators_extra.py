"""Interleaved generator, A8 experiment, GK compress soundness."""

from fractions import Fraction

import pytest

from repro.experiments import run_experiment
from repro.streams import Stream, interleaved_stream, random_stream
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy
from repro.universe import Universe, key_of


class TestInterleavedStream:
    def test_round_robin_order(self, universe):
        items = interleaved_stream(universe, 8, runs=2)
        assert [key_of(i) for i in items] == [1, 5, 2, 6, 3, 7, 4, 8]

    def test_is_permutation(self, universe):
        items = interleaved_stream(universe, 37, runs=3)
        assert sorted(key_of(i) for i in items) == list(range(1, 38))

    def test_runs_validation(self, universe):
        with pytest.raises(ValueError):
            interleaved_stream(universe, 10, runs=0)

    def test_single_run_is_sorted(self, universe):
        items = interleaved_stream(universe, 9, runs=1)
        assert [key_of(i) for i in items] == list(range(1, 10))

    def test_gk_guarantee_on_interleaved(self):
        universe = Universe()
        items = interleaved_stream(universe, 1600, runs=4)
        summary = GreenwaldKhanna(1 / 16)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        for percent in (0, 25, 50, 75, 100):
            phi = percent / 100
            rank = stream.rank(summary.query(phi))
            target = max(1, min(1600, round(phi * 1600)))
            assert abs(rank - target) <= 1600 / 16 + 1


class TestA8Experiment:
    def test_shape(self):
        (table,) = run_experiment("A8", length=4000, budgets=(32, 512), epsilon=1 / 50)
        methods = table.column("method")
        assert methods[-1].startswith("gk one pass")
        errors = [v for v in table.column("rank error")]
        assert errors[:-1] == ["0", "0"]  # multipass rows exact
        scans = [int(v) for v in table.column("scans")[:-1]]
        assert scans[0] >= scans[1]  # smaller memory, no fewer scans


@pytest.mark.parametrize("variant", [GreenwaldKhanna, GreenwaldKhannaGreedy])
class TestGKCompressSoundness:
    def test_rank_bounds_remain_valid_after_every_compress(self, variant):
        """rmin <= true rank <= rmax for every tuple, at every prefix."""
        universe = Universe()
        items = random_stream(universe, 600, seed=13)
        summary = variant(1 / 8)
        stream = Stream()
        for index, item in enumerate(items):
            summary.process(item)
            stream.append(item)
            if index % 57 != 0:
                continue
            rmin = 0
            for entry in summary._tuples:
                rmin += entry.g
                true_rank = stream.rank(entry.value)
                assert rmin <= true_rank <= rmin + entry.delta, (
                    f"tuple bounds broken at n={summary.n}"
                )

    def test_compress_never_drops_extremes(self, variant):
        universe = Universe()
        items = random_stream(universe, 500, seed=14)
        summary = variant(1 / 8)
        for item in items:
            summary.process(item)
        array = summary.item_array()
        assert key_of(array[0]) == 1
        assert key_of(array[-1]) == 500

    def test_compress_reduces_array_at_fixed_prefix(self, variant):
        universe = Universe()
        lazy = variant(1 / 8, compress_period=10**9)
        eager = variant(1 / 8)
        items = random_stream(universe, 1000, seed=15)
        for item in items:
            lazy.process(item)
            eager.process(item)
        assert len(eager.item_array()) < len(lazy.item_array())

    def test_rank_bounds_fraction_epsilon(self, variant):
        # Exact-fraction epsilon keeps the invariant with no float slack.
        universe = Universe()
        summary = variant(Fraction(1, 10))
        summary.process_all(random_stream(universe, 400, seed=16))
        threshold = summary._threshold()
        for entry in summary._tuples:
            assert entry.g + entry.delta <= max(1, threshold)
