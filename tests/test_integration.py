"""End-to-end integration: the full pipeline against every registered summary."""

import math

import pytest

from repro import (
    available_summaries,
    build_adversarial_pair,
    check_claim1,
    check_space_gap,
    create_summary,
    find_failing_quantile,
)
from repro.core.spacegap import claim1_violations, space_gap_violations
from repro.model.compliance import ComplianceMonitor
from repro.streams import random_stream
from repro.universe import Universe

# Comparison-based, deterministic (or seed-fixed) summaries the full
# adversary pipeline applies to, with per-summary constructor arguments.
ATTACKABLE = {
    "gk": {},
    "gk-greedy": {},
    "exact": {},
    "capped": {"budget": 24},
    "kll": {"seed": 0},
    "mrl": {"n_hint": 1 << 13},
    "biased": {},
}


@pytest.mark.parametrize("name", sorted(ATTACKABLE))
class TestFullPipeline:
    def test_adversary_plus_all_proof_checks(self, name):
        epsilon, k = 1 / 32, 5
        result = build_adversarial_pair(
            lambda eps: create_summary(name, eps, **ATTACKABLE[name]),
            epsilon=epsilon,
            k=k,
        )
        # Proof machinery holds regardless of the summary's quality:
        assert space_gap_violations(result) == []
        assert claim1_violations(result) == []
        assert len(check_space_gap(result)) == len(result.nodes())
        assert len(check_claim1(result)) == 2 ** (k - 1) - 1
        # Lemma 3.4 dichotomy: small gap, or a concrete failing quantile.
        witness = find_failing_quantile(result)
        gap = result.final_gap().gap
        if gap <= 2 * epsilon * result.length:
            assert witness is None
        else:
            assert witness is not None and witness.failed


class TestComplianceUnderAdversary:
    def test_gk_compliant_through_the_whole_attack(self):
        result = build_adversarial_pair(
            lambda eps: ComplianceMonitor(create_summary("gk", eps)),
            epsilon=1 / 16,
            k=4,
        )
        assert result.pair.summary_pi.is_compliant
        assert result.pair.summary_rho.is_compliant


class TestRegistryMatrixOnPlainStreams:
    @pytest.mark.parametrize(
        "name", sorted(set(available_summaries()) - {"qdigest", "turnstile"})
    )
    def test_every_summary_processes_and_answers(self, name):
        universe = Universe()
        items = random_stream(universe, 600, seed=1)
        kwargs = {"n_hint": 600} if name in ("mrl", "sampled-gk") else {}
        summary = create_summary(name, 1 / 8, **kwargs)
        summary.process_all(items)
        answer = summary.query(0.5)
        assert answer in set(items)

    def test_turnstile_on_integer_stream(self):
        universe = Universe()
        items = random_stream(universe, 600, seed=1)
        summary = create_summary("turnstile", 1 / 8, universe_bits=10)
        summary.process_all(items)
        summary.query(0.5)  # value-typed answer; may not be a stream item

    def test_qdigest_on_integer_stream(self):
        universe = Universe()
        items = random_stream(universe, 600, seed=1)
        summary = create_summary(
            "qdigest", 1 / 8, universe_bits=math.ceil(math.log2(602))
        )
        summary.process_all(items)
        summary.query(0.5)  # may legally return an unseen value


class TestCheatersAreCaught:
    """Summaries outside the model trip the adversary's runtime checks.

    Definition 2.1(iii) cannot be enforced statically; its observable
    consequence — order-isomorphic streams leave equivalent memory — is
    verified after every phase, so a summary that peeks at values or flips
    unseeded coins diverges across pi and rho and raises.
    """

    def test_value_peeking_summary_detected(self):
        import pytest as _pytest

        from repro.errors import IndistinguishabilityViolation
        from repro.summaries.capped import CappedSummary
        from repro.universe import key_of as _key_of

        class ValuePeeking(CappedSummary):
            name = "value-peeking"

            def fingerprint(self):
                # Cheats: leaks item values into the general memory.  A
                # forgetful summary makes the refined intervals of pi and rho
                # genuinely different, so their items differ and the leak
                # makes the two fingerprints diverge.
                leak = hash(tuple(_key_of(entry.value) for entry in self._entries))
                return (self.name, self._n, leak)

        with _pytest.raises(IndistinguishabilityViolation):
            build_adversarial_pair(
                lambda eps: ValuePeeking(eps, budget=8), epsilon=1 / 8, k=3
            )

    def test_unseeded_randomness_detected(self):
        import pytest as _pytest

        from repro.errors import IndistinguishabilityViolation
        from repro.summaries.kll import KLL

        seeds = iter(range(100))

        def fresh_seed_factory(eps):
            # Each instance flips different coins — effectively unseeded
            # randomness, which is exactly what Theorem 6.4's reduction must
            # remove before the deterministic adversary applies.
            return KLL(eps, k=8, seed=next(seeds))

        with _pytest.raises(IndistinguishabilityViolation):
            build_adversarial_pair(fresh_seed_factory, epsilon=1 / 8, k=5)


class TestScalingSanity:
    def test_gk_space_logarithmic_not_linear(self):
        universe = Universe()
        sizes = []
        for length in (2000, 8000):
            summary = create_summary("gk", 1 / 32)
            summary.process_all(random_stream(universe, length, seed=2))
            sizes.append(summary.max_item_count)
        # Quadrupling N must grow space far less than 4x.
        assert sizes[1] < sizes[0] * 2
