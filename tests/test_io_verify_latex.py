"""Stream I/O, the verification report, and the LaTeX renderer."""

import pytest

from repro.analysis.latex import to_latex
from repro.analysis.tables import Table
from repro.streams.io import StreamFormatError, load_items, save_items
from repro.summaries.capped import CappedSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import LexicographicUniverse, Universe, key_of
from repro.verify import report_from_result, verify_summary


class TestStreamIO:
    def test_round_trip_integers(self, tmp_path, universe):
        items = universe.items([5, 1, 4, 2])
        path = tmp_path / "stream.txt"
        assert save_items(path, items) == 4
        restored = load_items(path)
        assert [key_of(i) for i in restored] == [5, 1, 4, 2]

    def test_round_trip_fractions(self, tmp_path, universe):
        from fractions import Fraction

        items = universe.items([Fraction(1, 3), Fraction(-7, 2)])
        path = tmp_path / "stream.txt"
        save_items(path, items)
        restored = load_items(path)
        assert [key_of(i) for i in restored] == [Fraction(1, 3), Fraction(-7, 2)]

    def test_round_trip_strings(self, tmp_path):
        universe = LexicographicUniverse()
        items = universe.items(["b", "dn", "c"])
        path = tmp_path / "stream.txt"
        save_items(path, items)
        restored = load_items(path)
        assert [key_of(i) for i in restored] == ["b", "dn", "c"]

    def test_header_written_as_comments(self, tmp_path, universe):
        path = tmp_path / "stream.txt"
        save_items(path, universe.items([1]), header="adversarial\nk=5")
        text = path.read_text()
        assert text.startswith("# adversarial\n# k=5\n")
        assert len(load_items(path)) == 1

    def test_bad_line_reported(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("1\nnonsense\n")
        with pytest.raises(StreamFormatError, match="2"):
            load_items(path)

    def test_mixed_kinds_rejected(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("1\ns:b\n")
        with pytest.raises(StreamFormatError, match="mixes"):
            load_items(path)

    def test_adversarial_stream_round_trip(self, tmp_path):
        from repro.core.adversary import build_adversarial_pair

        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 8, k=3)
        items = result.pair.stream_pi.items_in_order_of_arrival
        path = tmp_path / "adversarial.txt"
        save_items(path, items, header="adversarial vs gk")
        restored = load_items(path)
        # Re-feeding the restored stream reproduces the exact footprint.
        replay = GreenwaldKhanna(1 / 8)
        replay.process_all(restored)
        assert replay.fingerprint() == result.pair.summary_pi.fingerprint()


class TestVerificationReport:
    def test_gk_survives(self):
        report = verify_summary(GreenwaldKhanna, epsilon=1 / 16, k=4)
        assert report.survived
        assert report.proof_checks_hold
        assert report.final_gap <= report.gap_bound
        assert "SURVIVED" in report.render()

    def test_capped_defeated(self):
        report = verify_summary(CappedSummary, epsilon=1 / 16, k=4, budget=8)
        assert not report.survived
        assert report.proof_checks_hold  # Lemma 5.2 holds even for losers
        assert report.witness is not None
        assert "DEFEATED" in report.render()

    def test_report_from_existing_result(self):
        from repro.core.adversary import build_adversarial_pair

        result = build_adversarial_pair(GreenwaldKhanna, epsilon=1 / 16, k=4)
        report = report_from_result(result)
        assert report.length == result.length
        assert report.max_items_stored == result.max_items_stored()

    def test_render_contains_all_figures(self):
        report = verify_summary(GreenwaldKhanna, epsilon=1 / 16, k=3)
        text = report.render()
        assert str(report.max_items_stored) in text
        assert str(report.final_gap) in text


class TestLatex:
    def make_table(self):
        table = Table("Results & more", ["name_of", "value"])
        table.add_row("gk 50%", 12)
        table.add_row("capped", 3.5)
        return table

    def test_structure(self):
        latex = to_latex(self.make_table())
        assert latex.startswith(r"\begin{table}")
        assert r"\toprule" in latex and r"\bottomrule" in latex
        assert latex.count(r" \\") == 3  # header + two rows

    def test_escaping(self):
        latex = to_latex(self.make_table())
        assert r"name\_of" in latex
        assert r"50\%" in latex
        assert r"Results \& more" in latex

    def test_alignment_inference(self):
        latex = to_latex(self.make_table())
        assert r"\begin{tabular}{lr}" in latex

    def test_caption_and_label(self):
        latex = to_latex(self.make_table(), caption="Cap", label="tab:x")
        assert r"\caption{Cap}" in latex
        assert r"\label{tab:x}" in latex

    def test_dash_placeholders_stay_numeric(self):
        table = Table("t", ["v"])
        table.add_row("-")
        table.add_row(7)
        assert r"\begin{tabular}{r}" in to_latex(table)
