"""The lexicographic string universe and its midpoint construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UniverseExhaustedError
from repro.universe import (
    LexicographicUniverse,
    OpenInterval,
    POS_INFINITY,
    key_of,
    string_between,
)

canonical_strings = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8
).filter(lambda s: not s.endswith("a"))


class TestStringBetween:
    def test_simple_midpoints(self):
        assert string_between("", None) == "n"
        assert string_between("b", "x") == "m"

    def test_adjacent_letters_descend(self):
        result = string_between("b", "c")
        assert "b" < result < "c"
        assert result.startswith("b")

    def test_prefix_cases(self):
        assert "az" < string_between("az", "b") < "b"
        assert "" < string_between("", "b") < "b"
        assert "" < string_between("", "ab") < "ab"

    def test_result_is_canonical(self):
        for low, high in [("", None), ("b", "c"), ("az", "b"), ("m", "mz")]:
            assert not string_between(low, high).endswith("a")

    def test_empty_interval_rejected(self):
        with pytest.raises(UniverseExhaustedError):
            string_between("c", "b")
        with pytest.raises(UniverseExhaustedError):
            string_between("c", "c")

    @settings(max_examples=300, deadline=None)
    @given(canonical_strings, canonical_strings)
    def test_between_property(self, a, b):
        if a == b:
            return
        low, high = sorted([a, b])
        result = string_between(low, high)
        assert low < result < high
        assert not result.endswith("a")

    @settings(max_examples=50, deadline=None)
    @given(canonical_strings)
    def test_between_low_and_top(self, low):
        result = string_between(low, None)
        assert result > low

    def test_repeated_bisection_200_deep(self):
        # The continuity assumption: always room to descend.
        low, high = "b", "c"
        for _ in range(200):
            middle = string_between(low, high)
            assert low < middle < high
            low = middle
        assert len(low) <= 220  # growth stays linear in depth


class TestLexicographicUniverse:
    def test_item_validation(self):
        universe = LexicographicUniverse()
        with pytest.raises(ValueError):
            universe.item("")
        with pytest.raises(ValueError):
            universe.item("nota!")
        with pytest.raises(ValueError):
            universe.item("enda")

    def test_ordered_items_increasing_and_inside(self):
        universe = LexicographicUniverse()
        lo, hi = universe.item("b"), universe.item("c")
        interval = OpenInterval(lo, hi)
        items = universe.ordered_items(17, interval)
        assert len(items) == 17
        assert all(x < y for x, y in zip(items, items[1:]))
        assert all(interval.contains(item) for item in items)

    def test_half_bounded_interval(self):
        universe = LexicographicUniverse()
        interval = OpenInterval(universe.item("m"), POS_INFINITY)
        drawn = universe.between(interval)
        assert key_of(drawn) > "m"

    def test_items_created_counter(self):
        universe = LexicographicUniverse()
        universe.ordered_items(5, OpenInterval.unbounded())
        assert universe.items_created == 5

    def test_labels(self):
        universe = LexicographicUniverse()
        items = universe.ordered_items(2, OpenInterval.unbounded(), label_prefix="s")
        assert [i.label for i in items] == ["s1", "s2"]

    def test_zero_count_rejected(self):
        universe = LexicographicUniverse()
        with pytest.raises(ValueError):
            universe.ordered_items(0, OpenInterval.unbounded())


class TestUniverseObliviousness:
    def test_adversary_traces_identical_across_universes(self):
        from repro.core.adversary import build_adversarial_pair
        from repro.summaries.gk import GreenwaldKhanna
        from repro.universe import Universe

        rational = build_adversarial_pair(
            GreenwaldKhanna, epsilon=1 / 8, k=4, universe=Universe()
        )
        lexicographic = build_adversarial_pair(
            GreenwaldKhanna, epsilon=1 / 8, k=4, universe=LexicographicUniverse()
        )
        assert [n.gap for n in rational.nodes()] == [
            n.gap for n in lexicographic.nodes()
        ]
        assert [n.space for n in rational.nodes()] == [
            n.space for n in lexicographic.nodes()
        ]
        assert (
            rational.pair.summary_pi.fingerprint()
            == lexicographic.pair.summary_pi.fingerprint()
        )

    def test_gk_over_strings_meets_guarantee(self):
        from repro.streams import Stream
        from repro.summaries.gk import GreenwaldKhanna

        universe = LexicographicUniverse()
        items = universe.ordered_items(512, OpenInterval.unbounded())
        import random

        random.Random(4).shuffle(items)
        summary = GreenwaldKhanna(1 / 8)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        for percent in (0, 25, 50, 75, 100):
            phi = percent / 100
            rank = stream.rank(summary.query(phi))
            target = max(1, min(512, round(phi * 512)))
            assert abs(rank - target) <= 512 / 8 + 1
