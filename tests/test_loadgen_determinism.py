"""Load-generator determinism and the GK-backed latency refactor.

Satellite of the canary PR: ``LoadReport`` now tracks per-op latency in
GK-backed histograms (bounded space for soak runs) with raw samples
opt-in, and the same seed must produce the identical operation stream and
ground truth — the property the canary harness builds on.
"""

import asyncio

import pytest

from repro.engine import EngineConfig
from repro.obs.registry import Histogram
from repro.service import (
    LoadConfig,
    LoadReport,
    QuantileService,
    ServiceConfig,
    run_load,
)

EPSILON = 0.02


def make_service() -> QuantileService:
    return QuantileService(
        engine_config=EngineConfig(summary="gk", epsilon=EPSILON, shards=2),
        config=ServiceConfig(port=0),
    )


async def one_run(config: LoadConfig) -> LoadReport:
    service = make_service()
    await service.start()
    try:
        return await run_load("127.0.0.1", service.port, config)
    finally:
        await service.stop()


def run_twice(config: LoadConfig) -> tuple[LoadReport, LoadReport]:
    async def both():
        return await one_run(config), await one_run(config)

    return asyncio.run(both())


class TestDeterminism:
    def test_same_seed_same_stream_and_ground_truth(self):
        config = LoadConfig(clients=4, ops_per_client=20, seed=7)
        first, second = run_twice(config)
        assert first.inserted == second.inserted
        assert first.ops == second.ops
        assert first.ok == second.ok
        assert first.errors == second.errors
        probe = first.inserted[len(first.inserted) // 2]
        assert first.exact_rank(probe) == second.exact_rank(probe)

    def test_different_seed_different_stream(self):
        async def runs():
            a = await one_run(LoadConfig(clients=2, ops_per_client=10, seed=0))
            b = await one_run(LoadConfig(clients=2, ops_per_client=10, seed=1))
            return a, b

        first, second = asyncio.run(runs())
        assert first.inserted != second.inserted


class TestHistogramLatencies:
    def test_default_mode_keeps_no_raw_samples(self):
        config = LoadConfig(clients=2, ops_per_client=15, seed=3)
        report = asyncio.run(one_run(config))
        assert report.latencies_ns == {}
        assert report.histograms, "per-op histograms must exist"
        for op, histogram in report.histograms.items():
            assert isinstance(histogram, Histogram)
            assert histogram.observations > 0, op

    def test_raw_mode_keeps_samples_and_they_agree_with_gk(self):
        config = LoadConfig(
            clients=2, ops_per_client=25, seed=3, raw_latencies=True
        )
        report = asyncio.run(one_run(config))
        assert report.latencies_ns, "raw mode must record samples"
        for op, samples in report.latencies_ns.items():
            histogram = report.histograms[op]
            assert histogram.observations == len(samples)
            quantiles = report.latency_quantiles_us(op, (0.5,))
            ordered = sorted(samples)
            # The GK answer is a real sample within epsilon rank error.
            rank = sum(
                1 for v in ordered if v / 1000.0 <= quantiles["p50"] + 1e-9
            )
            target = 0.5 * len(ordered)
            assert abs(rank - target) <= max(
                1.0, 2 * 0.005 * len(ordered) + 1
            )

    def test_histogram_space_is_bounded(self):
        report = LoadReport()
        for index in range(20_000):
            report.record_ok("insert", index % 997 + 1)
        histogram = report.histograms["insert"]
        assert histogram.observations == 20_000
        assert report.latencies_ns == {}
        # GK keeps O((1/eps) log(eps N)) tuples, far below the 20k stream.
        assert histogram.summary.max_item_count < 2_000

    def test_merge_combines_histograms_and_raw_samples(self):
        left, right = LoadReport(raw_latencies=True), LoadReport(
            raw_latencies=True
        )
        for value in (100, 200, 300):
            left.record_ok("query", value)
        for value in (400, 500):
            right.record_ok("query", value)
        right.record_error("rank", "overloaded", 50)
        left.merge(right)
        assert left.ops == 6 and left.ok == 5
        assert left.errors == {"overloaded": 1}
        assert left.histograms["query"].observations == 5
        assert sorted(left.latencies_ns["query"]) == [100, 200, 300, 400, 500]
        assert left.histograms["rank"].observations == 1

    def test_summary_uses_histogram_quantiles(self):
        report = LoadReport()
        for value in range(1, 1001):
            report.record_ok("insert", value * 1000)  # 1..1000 us
        summary = report.summary()
        p50 = summary["latency_us"]["insert"]["p50"]
        assert p50 == pytest.approx(500, abs=25)
        assert summary["ops"] == 1000
