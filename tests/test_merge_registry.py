"""The per-type merge registry in repro.model.registry."""

import pytest

from repro.errors import UnsupportedMergeError
from repro.model.registry import (
    available_summaries,
    create_summary,
    has_merge,
    merge_summaries,
    mergeable_summaries,
    register_merge,
)
from repro.summaries.gk import GreenwaldKhanna
from repro.universe.item import key_of
from repro.universe.universe import Universe

MERGEABLE = ("exact", "gk", "gk-greedy", "kll", "mrl", "req")


def _filled(name, values, epsilon=1 / 8):
    universe = Universe()
    kwargs = {"seed": 7} if name in ("kll", "req") else {}
    if name == "mrl":
        kwargs["n_hint"] = len(values)
    summary = create_summary(name, epsilon, **kwargs)
    summary.process_all(universe.items(values))
    return summary


class TestRegistry:
    def test_expected_types_are_mergeable(self):
        assert mergeable_summaries() == sorted(MERGEABLE)
        for name in MERGEABLE:
            assert has_merge(name)

    def test_unmergeable_types_report_false(self):
        for name in set(available_summaries()) - set(MERGEABLE):
            assert not has_merge(name)

    def test_reregistration_must_be_identical(self):
        from repro.summaries.merging import merge_gk

        register_merge("gk", merge_gk)  # same function: fine
        with pytest.raises(ValueError):
            register_merge("gk", lambda a, b: a)


class TestMergeSummaries:
    @pytest.mark.parametrize("name", MERGEABLE)
    def test_merged_counts_and_inputs_untouched(self, name):
        first = _filled(name, range(0, 100))
        second = _filled(name, range(100, 160))
        merged = merge_summaries(first, second)
        assert merged.n == 160
        assert first.n == 100
        assert second.n == 60

    @pytest.mark.parametrize("name", MERGEABLE)
    def test_merged_median_is_reasonable(self, name):
        first = _filled(name, range(0, 100))
        second = _filled(name, range(100, 200))
        merged = merge_summaries(first, second)
        answer = key_of(merged.query(0.5))
        # merged guarantee is at worst the max input epsilon (1/8) on n=200
        assert abs(int(answer) - 100) <= 2 * (200 / 8) + 1

    def test_gk_variants_cross_merge(self):
        first = _filled("gk", range(0, 50))
        second = _filled("gk-greedy", range(50, 100))
        merged = merge_summaries(first, second)
        assert merged.n == 100

    def test_unregistered_type_raises(self):
        summary = _filled("gk", range(10))
        other = create_summary("qdigest", 1 / 4, universe_bits=8)
        with pytest.raises(UnsupportedMergeError, match="qdigest"):
            merge_summaries(other, other)
        # the error names what *is* mergeable
        with pytest.raises(UnsupportedMergeError, match="mergeable types"):
            merge_summaries(other, summary)

    def test_mixed_types_raise(self):
        kll = _filled("kll", range(50))
        gk = _filled("gk", range(50))
        with pytest.raises(UnsupportedMergeError):
            merge_summaries(kll, gk)

    def test_object_without_name_raises(self):
        class Anonymous:
            pass

        with pytest.raises(UnsupportedMergeError):
            merge_summaries(Anonymous(), Anonymous())

    def test_gk_merge_is_nonmutating_gk_path(self):
        first = _filled("gk", range(100))
        before = [key_of(item) for item in first.item_array()]
        merge_summaries(first, _filled("gk", range(100, 200)))
        assert [key_of(item) for item in first.item_array()] == before
        assert isinstance(first, GreenwaldKhanna)
