"""Merging summaries: GK one-way merge, KLL/MRL/Exact level-wise merges."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import Stream, random_stream
from repro.summaries import merge_gk
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy
from repro.summaries.kll import KLL
from repro.summaries.mrl import MRL
from repro.universe import Universe


def split_stream(universe, length, seed, parts):
    items = random_stream(universe, length, seed=seed)
    chunk = length // parts
    return [items[i * chunk : (i + 1) * chunk] for i in range(parts - 1)] + [
        items[(parts - 1) * chunk :]
    ], items


def check_merged_guarantee(summary, items, allowed_eps):
    stream = Stream()
    stream.extend(items)
    n = len(items)
    grid = max(8, round(2 / allowed_eps))
    for j in range(grid + 1):
        phi = Fraction(j, grid)
        rank = stream.rank(summary.query(float(phi)))
        target = max(1, min(n, int(phi * n)))
        assert abs(rank - target) <= allowed_eps * n + 1, (
            f"phi={phi}: rank {rank} target {target}"
        )


class TestGKMerge:
    @pytest.mark.parametrize("variant", [GreenwaldKhanna, GreenwaldKhannaGreedy])
    def test_two_way_merge_meets_additive_guarantee(self, variant):
        universe = Universe()
        (left, right), items = split_stream(universe, 2000, seed=0, parts=2)
        a, b = variant(1 / 32), variant(1 / 32)
        a.process_all(left)
        b.process_all(right)
        merged = merge_gk(a, b)
        assert merged.n == 2000
        # Merged rank bounds add exactly, so the guarantee stays at eps.
        check_merged_guarantee(merged, items, allowed_eps=1 / 32)

    def test_merged_epsilon_is_max(self):
        a, b = GreenwaldKhanna(1 / 32), GreenwaldKhanna(1 / 64)
        universe = Universe()
        a.process_all(universe.items(range(100)))
        b.process_all(universe.items(range(100, 200)))
        merged = merge_gk(a, b)
        assert merged.epsilon == pytest.approx(1 / 32)

    def test_merge_preserves_variant(self):
        universe = Universe()
        a, b = GreenwaldKhannaGreedy(1 / 8), GreenwaldKhannaGreedy(1 / 8)
        a.process_all(universe.items(range(50)))
        b.process_all(universe.items(range(50, 100)))
        merged = merge_gk(a, b)
        assert isinstance(merged, GreenwaldKhannaGreedy)

    def test_inputs_left_intact(self):
        universe = Universe()
        a, b = GreenwaldKhanna(1 / 8), GreenwaldKhanna(1 / 8)
        a.process_all(universe.items(range(100)))
        b.process_all(universe.items(range(100, 200)))
        before_a, before_b = a.fingerprint(), b.fingerprint()
        merge_gk(a, b)
        assert a.fingerprint() == before_a
        assert b.fingerprint() == before_b

    def test_merged_summary_keeps_streaming(self):
        universe = Universe()
        a, b = GreenwaldKhanna(1 / 16), GreenwaldKhanna(1 / 16)
        a.process_all(universe.items(range(0, 400, 2)))
        b.process_all(universe.items(range(1, 400, 2)))
        merged = merge_gk(a, b)
        extra = universe.items(range(400, 600))
        merged.process_all(extra)
        assert merged.n == 600
        merged.query(0.5)  # still answers

    def test_merge_weights_sum_to_n(self):
        universe = Universe()
        a, b = GreenwaldKhanna(1 / 16), GreenwaldKhanna(1 / 16)
        a.process_all(universe.items(range(0, 500, 2)))
        b.process_all(universe.items(range(1, 500, 2)))
        merged = merge_gk(a, b)
        assert sum(entry.g for entry in merged._tuples) == merged.n

    def test_merge_space_stays_summary_sized(self):
        universe = Universe()
        a, b = GreenwaldKhanna(1 / 32), GreenwaldKhanna(1 / 32)
        a.process_all(random_stream(universe, 4000, seed=1))
        b.process_all(
            [universe.item(10**7 + i) for i in range(4000)]
        )
        merged = merge_gk(a, b)
        assert len(merged._tuples) < 8000 / 4

    def test_type_checked(self):
        a = GreenwaldKhanna(1 / 8)
        with pytest.raises(TypeError):
            merge_gk(a, ExactSummary())

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        length=st.integers(min_value=20, max_value=600),
        parts_seed=st.integers(min_value=1, max_value=10**6),
    )
    def test_merge_guarantee_property(self, seed, length, parts_seed):
        universe = Universe()
        items = random_stream(universe, length, seed=seed)
        split = parts_seed % (length - 1) + 1
        a, b = GreenwaldKhanna(1 / 16), GreenwaldKhanna(1 / 16)
        a.process_all(items[:split])
        b.process_all(items[split:])
        merged = merge_gk(a, b)
        check_merged_guarantee(merged, items, allowed_eps=1 / 16)


class TestKLLMerge:
    def test_merge_preserves_weight(self):
        universe = Universe()
        a = KLL(1 / 16, seed=0)
        b = KLL(1 / 16, seed=1)
        a.process_all(random_stream(universe, 1500, seed=2))
        b.process_all([universe.item(10**7 + i) for i in range(1500)])
        a.merge(b)
        assert a.n == 3000
        assert sum(weight for _, weight in a._weighted_items()) == 3000

    def test_merged_accuracy(self):
        universe = Universe()
        items = random_stream(universe, 4000, seed=3)
        a = KLL(1 / 16, delta=1e-4, seed=0)
        b = KLL(1 / 16, delta=1e-4, seed=1)
        a.process_all(items[:2000])
        b.process_all(items[2000:])
        a.merge(b)
        stream = Stream()
        stream.extend(items)
        for percent in range(0, 101, 10):
            phi = percent / 100
            rank = stream.rank(a.query(phi))
            target = max(1, min(4000, round(phi * 4000)))
            assert abs(rank - target) <= 2 * 4000 / 16

    def test_eight_way_merge_tree(self):
        universe = Universe()
        items = random_stream(universe, 4000, seed=4)
        shards = [KLL(1 / 16, delta=1e-4, seed=s) for s in range(8)]
        for index, item in enumerate(items):
            shards[index % 8].process(item)
        while len(shards) > 1:
            merged = []
            for left, right in zip(shards[::2], shards[1::2]):
                left.merge(right)
                merged.append(left)
            shards = merged
        combined = shards[0]
        assert combined.n == 4000
        stream = Stream()
        stream.extend(items)
        rank = stream.rank(combined.query(0.5))
        assert abs(rank - 2000) <= 3 * 4000 / 16

    def test_type_checked(self):
        with pytest.raises(TypeError):
            KLL(1 / 8, seed=0).merge(ExactSummary())


class TestMRLMerge:
    def test_merge_counts(self):
        universe = Universe()
        a = MRL(1 / 16, n_hint=4000)
        b = MRL(1 / 16, n_hint=4000)
        a.process_all(random_stream(universe, 1000, seed=5))
        b.process_all([universe.item(10**7 + i) for i in range(1000)])
        a.merge(b)
        assert a.n == 2000
        assert sum(weight for _, weight in a._weighted_items()) == 2000

    def test_merged_accuracy(self):
        universe = Universe()
        items = random_stream(universe, 3000, seed=6)
        a = MRL(1 / 16, n_hint=3000)
        b = MRL(1 / 16, n_hint=3000)
        a.process_all(items[:1500])
        b.process_all(items[1500:])
        a.merge(b)
        stream = Stream()
        stream.extend(items)
        for percent in range(0, 101, 20):
            phi = percent / 100
            rank = stream.rank(a.query(phi))
            target = max(1, min(3000, round(phi * 3000)))
            assert abs(rank - target) <= 2 * 3000 / 16

    def test_type_checked(self):
        with pytest.raises(TypeError):
            MRL(1 / 8).merge(ExactSummary())


class TestExactMerge:
    def test_merge_is_union(self, universe):
        a, b = ExactSummary(), ExactSummary()
        a.process_all(universe.items(range(0, 10)))
        b.process_all(universe.items(range(10, 25)))
        a.merge(b)
        assert a.n == 25
        assert len(a.item_array()) == 25

    def test_type_checked(self):
        with pytest.raises(TypeError):
            ExactSummary().merge(KLL(1 / 8, seed=0))
