"""ComplianceMonitor: the rules of Definition 2.1 enforced at runtime."""

import pytest

from repro.errors import ModelViolation
from repro.model import ComplianceMonitor, QuantileSummary
from repro.summaries.gk import GreenwaldKhanna
from repro.summaries.qdigest import QDigest
from repro.universe.item import Item
from repro.universe.universe import Universe


class _Honest(QuantileSummary):
    name = "honest"

    def __init__(self, epsilon: float = 0.25) -> None:
        super().__init__(epsilon)
        self._items: list[Item] = []

    def _insert(self, item: Item) -> None:
        self._items.append(item)
        self._items.sort()

    def _query(self, phi: float) -> Item:
        return self._items[min(len(self._items) - 1, int(phi * len(self._items)))]

    def item_array(self) -> list[Item]:
        return list(self._items)

    def fingerprint(self) -> tuple:
        return (self._n,)


class _StoresForeignItem(_Honest):
    """Stores an item that never appeared in the stream."""

    name = "foreign"

    def __init__(self, epsilon: float = 0.25) -> None:
        super().__init__(epsilon)
        self._universe = Universe()

    def _insert(self, item: Item) -> None:
        super()._insert(item)
        self._items.append(self._universe.item(10**9 + len(self._items)))
        self._items.sort()


class _UnsortedArray(_Honest):
    """Returns its item array in arrival order (possibly unsorted)."""

    name = "unsorted"

    def _insert(self, item: Item) -> None:
        self._items.append(item)

    def item_array(self) -> list[Item]:
        return list(self._items)


class _Resurrects(_Honest):
    """Drops an item, then silently puts it back without it re-arriving."""

    name = "resurrects"

    def __init__(self, epsilon: float = 0.25) -> None:
        super().__init__(epsilon)
        self._hidden: Item | None = None

    def _insert(self, item: Item) -> None:
        super()._insert(item)
        if self._n == 1:  # drop the second item, resurrect on the fourth
            self._hidden = self._items.pop(0)
        if self._n == 3 and self._hidden is not None:
            self._items.append(self._hidden)
            self._items.sort()
            self._hidden = None


class _LyingQuery(_Honest):
    """Answers queries with an item it does not store."""

    name = "lying-query"

    def _query(self, phi: float) -> Item:
        return Universe().item(-(10**9))


class TestHonestSummaries:
    def test_honest_summary_passes(self, universe):
        monitored = ComplianceMonitor(_Honest())
        monitored.process_all(universe.items(range(10)))
        monitored.query(0.5)
        assert monitored.is_compliant

    def test_gk_is_compliant(self, universe):
        monitored = ComplianceMonitor(GreenwaldKhanna(1 / 8))
        monitored.process_all(universe.items(range(200)))
        for phi in (0.0, 0.25, 0.5, 0.75, 1.0):
            monitored.query(phi)
        assert monitored.is_compliant

    def test_monitor_mirrors_inner_interface(self, universe):
        inner = GreenwaldKhanna(1 / 8)
        monitored = ComplianceMonitor(inner)
        monitored.process_all(universe.items(range(50)))
        assert monitored.item_array() == inner.item_array()
        assert monitored.fingerprint() == inner.fingerprint()
        assert monitored.name == "monitored[gk]"
        assert monitored.estimate_rank(universe.item(25)) == inner.estimate_rank(
            universe.item(25)
        )


class TestViolations:
    def test_foreign_item_detected(self, universe):
        monitored = ComplianceMonitor(_StoresForeignItem())
        with pytest.raises(ModelViolation, match="never seen"):
            monitored.process_all(universe.items(range(3)))
        assert not monitored.is_compliant

    def test_unsorted_array_detected(self, universe):
        monitored = ComplianceMonitor(_UnsortedArray())
        with pytest.raises(ModelViolation, match="sorted"):
            monitored.process_all(universe.items([5, 1]))

    def test_resurrection_detected(self, universe):
        monitored = ComplianceMonitor(_Resurrects())
        with pytest.raises(ModelViolation, match="discarded"):
            monitored.process_all(universe.items(range(6)))

    def test_reappearing_item_may_return(self, universe):
        # If the item arrives in the stream again, storing it again is legal.
        class DropThenSeeAgain(_Honest):
            name = "drop-then-see"

            def _insert(self, item: Item) -> None:
                super()._insert(item)
                if self._n == 0 and len(self._items) == 1:
                    pass

        monitored = ComplianceMonitor(DropThenSeeAgain())
        first = universe.item(1)
        again = universe.item(1)  # equal value arrives twice
        monitored.process(first)
        monitored.process(again)
        assert monitored.is_compliant

    def test_query_returning_unstored_item_detected(self, universe):
        monitored = ComplianceMonitor(_LyingQuery())
        monitored.process_all(universe.items(range(3)))
        with pytest.raises(ModelViolation, match="not present"):
            monitored.query(0.5)

    def test_qdigest_query_flagged_as_violation(self, universe):
        # The paper: q-digest "can actually return an item that did not occur
        # in the stream", so the monitor must reject it.
        monitored = ComplianceMonitor(QDigest(0.25, universe_bits=6))
        monitored.process_all(universe.items(range(20)))
        with pytest.raises(ModelViolation):
            monitored.query(0.5)
