"""QuantileSummary ABC: bookkeeping, validation, registry."""

import pytest

from repro.errors import EmptySummaryError, InvalidQuantileError
from repro.model import (
    MemoryState,
    QuantileSummary,
    available_summaries,
    create_summary,
    equivalent,
    register_summary,
)
from repro.universe.item import Item


class KeepAll(QuantileSummary):
    """Trivial summary used to exercise the ABC plumbing."""

    name = "keep-all-test"

    def __init__(self, epsilon: float = 0.1) -> None:
        super().__init__(epsilon)
        self._items: list[Item] = []

    def _insert(self, item: Item) -> None:
        self._items.append(item)
        self._items.sort()

    def _query(self, phi: float) -> Item:
        index = min(len(self._items) - 1, int(phi * len(self._items)))
        return self._items[index]

    def item_array(self) -> list[Item]:
        return list(self._items)

    def fingerprint(self) -> tuple:
        return (self.name, self._n)


class TestValidation:
    def test_epsilon_range_enforced(self):
        with pytest.raises(ValueError):
            KeepAll(epsilon=0)
        with pytest.raises(ValueError):
            KeepAll(epsilon=1)
        with pytest.raises(ValueError):
            KeepAll(epsilon=-0.5)

    def test_query_phi_out_of_range(self, universe):
        summary = KeepAll()
        summary.process(universe.item(1))
        with pytest.raises(InvalidQuantileError):
            summary.query(-0.1)
        with pytest.raises(InvalidQuantileError):
            summary.query(1.1)

    def test_query_empty_summary(self):
        with pytest.raises(EmptySummaryError):
            KeepAll().query(0.5)

    def test_estimate_rank_default_not_supported(self, universe):
        summary = KeepAll()
        summary.process(universe.item(1))
        with pytest.raises(NotImplementedError):
            summary.estimate_rank(universe.item(1))


class TestBookkeeping:
    def test_n_counts_processed_items(self, universe):
        summary = KeepAll()
        summary.process_all(universe.items(range(5)))
        assert summary.n == 5

    def test_max_item_count_tracks_peak(self, universe):
        summary = KeepAll()
        summary.process_all(universe.items(range(7)))
        assert summary.max_item_count == 7

    def test_repr_mentions_size(self, universe):
        summary = KeepAll()
        summary.process(universe.item(1))
        assert "stored=1" in repr(summary)


class TestMemoryState:
    def test_capture(self, universe):
        summary = KeepAll()
        summary.process_all(universe.items([2, 1]))
        state = MemoryState.capture(summary)
        assert state.item_count == 2
        assert state.fingerprint == ("keep-all-test", 2)

    def test_equivalence_requires_both_parts(self, universe):
        a, b = KeepAll(), KeepAll()
        a.process_all(universe.items([1, 2]))
        b.process_all(universe.items([10, 20]))
        # Same sizes and fingerprints although items differ: equivalent.
        assert equivalent(MemoryState.capture(a), MemoryState.capture(b))

    def test_inequivalent_on_size(self, universe):
        a, b = KeepAll(), KeepAll()
        a.process_all(universe.items([1, 2]))
        b.process(universe.item(1))
        assert not equivalent(MemoryState.capture(a), MemoryState.capture(b))

    def test_inequivalent_on_fingerprint(self, universe):
        a, b = KeepAll(), KeepAll()
        a.process_all(universe.items([1, 2]))
        b.process_all(universe.items([1, 2]))
        b_state = MemoryState.capture(b)
        forged = MemoryState(items=b_state.items, fingerprint=("other", 2))
        assert not equivalent(MemoryState.capture(a), forged)


class TestRegistry:
    def test_known_summaries_registered(self):
        names = available_summaries()
        for expected in ["gk", "gk-greedy", "kll", "mrl", "exact", "capped"]:
            assert expected in names

    def test_create_by_name(self):
        summary = create_summary("gk", epsilon=0.1)
        assert summary.name == "gk"
        assert summary.epsilon == 0.1

    def test_create_with_kwargs(self):
        summary = create_summary("capped", epsilon=0.1, budget=5)
        assert summary.budget == 5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown summary"):
            create_summary("nope", epsilon=0.1)

    def test_duplicate_registration_rejected(self):
        register_summary("keep-all-test-unique", KeepAll)
        with pytest.raises(ValueError):
            register_summary("keep-all-test-unique", lambda eps: KeepAll(eps))

    def test_idempotent_reregistration_allowed(self):
        register_summary("keep-all-test-idem", KeepAll)
        register_summary("keep-all-test-idem", KeepAll)
