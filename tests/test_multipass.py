"""Multi-pass exact selection (Munro-Paterson lineage)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multipass import SelectionError, multipass_median, multipass_select
from repro.streams import random_stream
from repro.universe import Universe, key_of


def make_source(values, universe=None):
    universe = universe if universe is not None else Universe()
    items = universe.items(values)
    return lambda: iter(items)


class TestExactness:
    def test_small_list_every_rank(self):
        values = [9, 2, 7, 4, 1, 8, 3, 6, 5]
        source = make_source(values)
        for rank in range(1, 10):
            result = multipass_select(source, rank, memory_budget=16)
            assert key_of(result.item) == rank

    def test_large_stream_selected_ranks(self):
        universe = Universe()
        items = random_stream(universe, 20_000, seed=5)
        source = lambda: iter(items)
        for rank in (1, 137, 10_000, 19_999, 20_000):
            result = multipass_select(source, rank, memory_budget=256)
            assert key_of(result.item) == rank

    def test_median_function(self):
        source = make_source(range(1, 102))  # 101 items, median = 51
        result = multipass_median(source, memory_budget=16)
        assert key_of(result.item) == 51

    def test_exact_despite_duplicates(self):
        values = [5, 1, 5, 5, 2, 2, 9] * 10
        source = make_source(values)
        expected = sorted(values)
        for rank in (1, 10, 35, 70):
            result = multipass_select(source, rank, memory_budget=16)
            assert key_of(result.item) == expected[rank - 1]

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=1, max_value=800),
        data=st.data(),
    )
    def test_selection_property(self, seed, n, data):
        universe = Universe()
        items = random_stream(universe, n, seed=seed)
        rank = data.draw(st.integers(min_value=1, max_value=n))
        result = multipass_select(lambda: iter(items), rank, memory_budget=32)
        assert key_of(result.item) == rank  # values are the permutation 1..n


class TestResourceBehaviour:
    def test_single_round_when_everything_fits(self):
        source = make_source(range(50))
        result = multipass_select(source, 25, memory_budget=64)
        assert result.passes == 2  # count scan + one summarise scan
        assert result.peak_memory <= 64

    def test_more_scans_with_smaller_memory(self):
        universe = Universe()
        items = random_stream(universe, 10_000, seed=6)
        small = multipass_select(lambda: iter(items), 5000, memory_budget=32)
        large = multipass_select(lambda: iter(items), 5000, memory_budget=4096)
        assert small.passes > large.passes
        assert small.peak_memory < large.peak_memory

    def test_peak_memory_far_below_n(self):
        universe = Universe()
        items = random_stream(universe, 30_000, seed=7)
        result = multipass_select(lambda: iter(items), 15_000, memory_budget=512)
        assert result.peak_memory <= 1024
        assert result.peak_memory < 30_000 / 20

    def test_scan_counts_reported(self):
        universe = Universe()
        items = random_stream(universe, 5000, seed=8)
        result = multipass_select(lambda: iter(items), 2500, memory_budget=64)
        assert result.passes >= 3  # count, summarise, verify at least once
        assert result.rank == 2500


class TestValidation:
    def test_rank_bounds(self):
        source = make_source(range(10))
        with pytest.raises(SelectionError):
            multipass_select(source, 0)
        with pytest.raises(SelectionError):
            multipass_select(source, 11)

    def test_memory_minimum(self):
        with pytest.raises(SelectionError):
            multipass_select(make_source(range(10)), 5, memory_budget=4)

    def test_empty_median(self):
        with pytest.raises(SelectionError):
            multipass_median(make_source([]))

    def test_unstable_source_detected(self):
        universe = Universe()
        shrinking = [universe.items(range(100)), universe.items(range(3))]

        def source():
            return iter(shrinking.pop(0)) if shrinking else iter([])

        with pytest.raises(SelectionError):
            multipass_select(source, 50, memory_budget=16)
