"""The ``obs`` CLI subcommands and the --metrics/--trace flags that feed them."""

import io
import json

import pytest

from repro.cli import main
from repro.obs import MetricRegistry, read_trace


def _write_numbers(tmp_path, values):
    path = tmp_path / "data.txt"
    path.write_text("\n".join(str(v) for v in values) + "\n")
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def attack_metrics(tmp_path):
    """A metrics dump plus trace from one small adversary run."""
    metrics = tmp_path / "attack-metrics.json"
    trace = tmp_path / "attack-trace.jsonl"
    code, _ = _run(
        [
            "attack",
            "--summary",
            "gk",
            "--epsilon",
            "0.125",
            "--k",
            "3",
            "--metrics",
            str(metrics),
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    return metrics, trace


@pytest.fixture
def engine_checkpoint(tmp_path):
    checkpoint = tmp_path / "engine.jsonl"
    trace = tmp_path / "engine-trace.jsonl"
    code, _ = _run(
        [
            "engine",
            "ingest",
            "--checkpoint",
            str(checkpoint),
            "--generate",
            "2000",
            "--shards",
            "2",
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    return checkpoint, trace


class TestMetricsFlags:
    def test_attack_metrics_dump_loads_as_registry(self, attack_metrics):
        metrics, _ = attack_metrics
        registry = MetricRegistry.from_payload(json.loads(metrics.read_text()))
        assert registry.get("adversary_nodes_total").value == 7
        assert registry.get("adversary_comparisons_total").value > 0
        assert registry.get("adversary_items_stored").value > 0

    def test_attack_trace_has_one_span_per_recursion_node(self, attack_metrics):
        _, trace = attack_metrics
        spans = [
            record
            for record in read_trace(trace)
            if record["kind"] == "span" and record["name"] == "adversary.node"
        ]
        assert len(spans) == 7
        for span in spans:
            assert "gap" in span["attributes"]
            assert "memory_state_size" in span["attributes"]

    def test_quantiles_metrics_dump(self, tmp_path):
        path = _write_numbers(tmp_path, range(1, 301))
        metrics = tmp_path / "q-metrics.json"
        code, text = _run(
            [
                "quantiles",
                "--input",
                path,
                "--epsilon",
                "0.05",
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        assert "metrics written to" in text
        registry = MetricRegistry.from_payload(json.loads(metrics.read_text()))
        assert registry.get("summary_items_processed_total", summary="gk").value == 300
        assert (
            registry.get("summary_process_latency_ns", summary="gk").observations
            == 300
        )

    def test_engine_ingest_trace(self, engine_checkpoint):
        _, trace = engine_checkpoint
        names = [
            record["name"]
            for record in read_trace(trace)
            if record["kind"] == "span"
        ]
        assert "engine.ingest" in names
        assert "engine.ingest_batch" in names
        assert "engine.checkpoint" in names


class TestObsReport:
    def test_requires_a_source(self):
        with pytest.raises(SystemExit):
            _run(["obs", "report"])

    def test_report_combines_metrics_checkpoint_and_trace(
        self, attack_metrics, engine_checkpoint
    ):
        metrics, trace = attack_metrics
        checkpoint, _ = engine_checkpoint
        code, text = _run(
            [
                "obs",
                "report",
                "--metrics",
                str(metrics),
                "--checkpoint",
                str(checkpoint),
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        assert "adversary_nodes_total = 7" in text
        assert "engine_items_ingested = 2000" in text
        assert "adversary_node_gap" in text
        assert "adversary.node: 7 span(s)" in text

    def test_missing_metrics_file_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read metrics file"):
            _run(["obs", "report", "--metrics", str(tmp_path / "missing.json")])


class TestObsExport:
    def test_prometheus_covers_the_acceptance_metrics(
        self, attack_metrics, engine_checkpoint
    ):
        """One export covers adversary round gap, items stored, comparison
        counts, and engine ingest latency histograms — the issue's bar."""
        metrics, _ = attack_metrics
        checkpoint, _ = engine_checkpoint
        code, text = _run(
            [
                "obs",
                "export",
                "--format",
                "prometheus",
                "--metrics",
                str(metrics),
                "--checkpoint",
                str(checkpoint),
            ]
        )
        assert code == 0
        assert 'adversary_round_gap{level="1"}' in text
        assert "adversary_items_stored" in text
        assert "adversary_comparisons_total" in text
        assert 'engine_latency_ns{operation="ingest_batch",quantile="0.5"}' in text
        assert "# TYPE engine_latency_ns summary" in text

    def test_json_export_to_file(self, attack_metrics, tmp_path):
        metrics, _ = attack_metrics
        output = tmp_path / "metrics.prom.json"
        code, text = _run(
            [
                "obs",
                "export",
                "--format",
                "json",
                "--metrics",
                str(metrics),
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert "json metrics written to" in text
        snapshot = json.loads(output.read_text())
        assert snapshot["counters"]["adversary_nodes_total"] == 7

    def test_merging_two_dumps_adds_counters(self, attack_metrics, tmp_path):
        metrics, _ = attack_metrics
        code, text = _run(
            [
                "obs",
                "export",
                "--format",
                "json",
                "--metrics",
                str(metrics),
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        assert json.loads(text)["counters"]["adversary_nodes_total"] == 14
