"""Exporters: Prometheus text exposition validity and JSON snapshots."""

import json
import re

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricRegistry, render, to_json, to_prometheus

# One sample line of the text exposition format (0.0.4):
#   name{label="value",...} <number>
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" [0-9eE+.\-]+$"
)
COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_][a-zA-Z0-9_]*( .*)?$")


def _populated() -> MetricRegistry:
    registry = MetricRegistry()
    registry.counter("adversary_comparisons_total", help="comparisons").inc(123)
    registry.gauge("adversary_round_gap", help="per-round gap", level="2").set(7)
    histogram = registry.histogram(
        "engine_latency_ns", help="engine latency", operation="ingest_batch"
    )
    for value in (1000, 2000, 3000):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_every_line_is_valid_exposition(self):
        text = to_prometheus(_populated())
        assert text.endswith("\n")
        for line in text.splitlines():
            assert COMMENT_LINE.match(line) or SAMPLE_LINE.match(line), line

    def test_type_lines_match_metric_kinds(self):
        text = to_prometheus(_populated())
        assert "# TYPE adversary_comparisons_total counter" in text
        assert "# TYPE adversary_round_gap gauge" in text
        assert "# TYPE engine_latency_ns summary" in text

    def test_summary_samples_cover_quantiles_sum_count(self):
        text = to_prometheus(_populated())
        assert 'engine_latency_ns{operation="ingest_batch",quantile="0.5"}' in text
        assert 'engine_latency_ns_sum{operation="ingest_batch"} 6000.0' in text
        assert 'engine_latency_ns_count{operation="ingest_batch"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricRegistry()
        registry.counter("x_total", path='a"b\\c').inc(1)
        text = to_prometheus(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricRegistry()) == ""

    def test_help_only_emitted_once_per_family(self):
        registry = MetricRegistry()
        registry.counter("x_total", help="x", summary="gk").inc(1)
        registry.counter("x_total", help="x", summary="kll").inc(1)
        text = to_prometheus(registry)
        assert text.count("# HELP x_total") == 1
        assert text.count("# TYPE x_total") == 1


class TestJsonAndDispatch:
    def test_json_export_parses_back_to_snapshot(self):
        registry = _populated()
        assert json.loads(to_json(registry)) == registry.snapshot()

    def test_render_dispatch(self):
        registry = _populated()
        assert render(registry, "prometheus") == to_prometheus(registry)
        assert render(registry, "json") == to_json(registry)
        with pytest.raises(ObservabilityError):
            render(registry, "xml")
