"""Instrumentation hooks: adversary tracing and observed summaries."""

from repro.core.adversary import build_adversarial_pair
from repro.obs import AdversaryTracer, MetricRegistry, ObservedSummary, read_trace, trace_to
from repro.streams import random_stream
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import ComparisonCounter, Universe
from repro.verify import verify_summary

EPSILON = 1 / 8
K = 3


def _traced_run(tmp_path):
    registry = MetricRegistry()
    tracer = AdversaryTracer(registry)
    path = tmp_path / "adv.jsonl"
    with trace_to(path):
        result = build_adversarial_pair(
            GreenwaldKhanna,
            epsilon=EPSILON,
            k=K,
            universe=Universe(counter=tracer.counter),
            observer=tracer,
        )
    return registry, tracer, result, read_trace(path)


class TestAdversaryTracer:
    def test_one_span_per_recursion_node_with_gap_and_memory(self, tmp_path):
        _, _, result, records = _traced_run(tmp_path)
        spans = [
            record
            for record in records
            if record["kind"] == "span" and record["name"] == "adversary.node"
        ]
        # The recursion tree of AdvStrategy(k) has 2^k - 1 nodes.
        assert len(spans) == 2**K - 1 == len(result.nodes())
        assert {span["attributes"]["level"] for span in spans} == set(range(1, K + 1))
        for span in spans:
            attributes = span["attributes"]
            assert attributes["gap"] >= 0
            assert attributes["space"] >= 0
            assert attributes["memory_state_size"] >= 0
            assert attributes["items_stored"] >= 0
            assert attributes["comparisons"] > 0
        # Span gaps match the measured NodeTraces exactly.
        assert sorted(s["attributes"]["gap"] for s in spans) == sorted(
            node.gap for node in result.nodes()
        )

    def test_parent_links_mirror_the_recursion_tree(self, tmp_path):
        _, _, _, records = _traced_run(tmp_path)
        spans = [r for r in records if r["kind"] == "span"]
        by_id = {span["id"]: span for span in spans}
        roots = [span for span in spans if span["parent"] is None]
        assert len(roots) == 1
        assert roots[0]["attributes"]["level"] == K
        for span in spans:
            if span["parent"] is not None:
                parent = by_id[span["parent"]]
                assert parent["attributes"]["level"] == span["attributes"]["level"] + 1

    def test_registry_covers_the_papers_quantities(self, tmp_path):
        registry, tracer, result, _ = _traced_run(tmp_path)
        assert registry.get("adversary_nodes_total").value == 2**K - 1
        assert (
            registry.get("adversary_comparisons_total").value
            == tracer.counter.comparisons
            > 0
        )
        assert (
            registry.get("adversary_items_stored").value
            == result.max_items_stored()
        )
        for level in range(1, K + 1):
            assert registry.get("adversary_round_gap", level=str(level)) is not None
        assert registry.get("adversary_node_gap").observations == 2**K - 1

    def test_metrics_work_without_an_active_trace(self):
        registry = MetricRegistry()
        tracer = AdversaryTracer(registry)
        build_adversarial_pair(
            GreenwaldKhanna,
            epsilon=EPSILON,
            k=2,
            universe=Universe(counter=tracer.counter),
            observer=tracer,
        )
        assert registry.get("adversary_nodes_total").value == 3

    def test_verify_summary_passes_observer_through(self):
        registry = MetricRegistry()
        tracer = AdversaryTracer(registry)
        report = verify_summary(
            GreenwaldKhanna,
            epsilon=EPSILON,
            k=2,
            universe=Universe(counter=tracer.counter),
            observer=tracer,
        )
        tracer.record_result(report)
        assert registry.get("adversary_final_gap").value == report.final_gap
        assert registry.get("adversary_survived").value == 1


class TestObservedSummary:
    def test_meters_process_and_query(self):
        registry = MetricRegistry()
        counter = ComparisonCounter()
        universe = Universe(counter=counter)
        summary = ObservedSummary(
            GreenwaldKhanna(0.05), registry=registry, counter=counter
        )
        items = random_stream(universe, 500, seed=3)
        summary.process_all(items)
        summary.query(0.5)
        summary.estimate_rank(items[0])

        assert summary.n == 500  # delegation still works
        assert registry.get("summary_items_processed_total", summary="gk").value == 500
        assert registry.get("summary_queries_total", summary="gk").value == 2
        assert registry.get("summary_comparisons_total", summary="gk").value > 0
        latency = registry.get("summary_process_latency_ns", summary="gk")
        assert latency.observations == 500
        assert registry.get("summary_query_latency_ns", summary="gk").observations == 2

    def test_works_without_a_counter(self):
        registry = MetricRegistry()
        summary = ObservedSummary(GreenwaldKhanna(0.05), registry=registry)
        summary.process_all(random_stream(Universe(), 100, seed=4))
        assert registry.get("summary_comparisons_total", summary="gk").value == 0
        assert registry.get("summary_items_processed_total", summary="gk").value == 100
