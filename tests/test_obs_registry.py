"""MetricRegistry: metric kinds, labels, snapshots, round-trips, merging."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricRegistry, get_registry, set_registry


class TestCounters:
    def test_counts_exactly(self):
        registry = MetricRegistry()
        counter = registry.counter("ops_total")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_get_or_create_returns_same_object(self):
        registry = MetricRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_labelled_series_are_distinct(self):
        registry = MetricRegistry()
        registry.counter("cmp_total", summary="gk").inc(3)
        registry.counter("cmp_total", summary="kll").inc(5)
        assert registry.get("cmp_total", summary="gk").value == 3
        assert registry.get("cmp_total", summary="kll").value == 5

    def test_counter_cannot_decrease(self):
        registry = MetricRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("x_total").inc(-1)

    def test_invalid_name_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad name")
        with pytest.raises(ObservabilityError):
            registry.counter("ok_name", **{"bad-label": "v"})

    def test_kind_conflict_rejected(self):
        registry = MetricRegistry()
        registry.counter("thing")
        with pytest.raises(ObservabilityError):
            registry.gauge("thing")
        with pytest.raises(ObservabilityError):
            registry.histogram("thing", summary="gk")


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricRegistry()
        gauge = registry.gauge("gap")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistograms:
    def test_observations_sum_and_quantiles(self):
        registry = MetricRegistry()
        histogram = registry.histogram("latency_ns")
        for value in range(1, 1001):
            histogram.observe(value)
        assert histogram.observations == 1000
        assert histogram.sum == 500_500
        quantiles = histogram.quantiles()
        assert set(quantiles) == {"p50", "p90", "p99"}
        # GK guarantee: within eps * n = 10 ranks of the true quantile.
        assert abs(quantiles["p50"] - 500) <= 10
        assert abs(quantiles["p99"] - 990) <= 10

    def test_empty_histogram_has_no_quantiles(self):
        registry = MetricRegistry()
        assert registry.histogram("empty_ns").quantiles() == {}

    def test_histogram_space_stays_sublinear(self):
        registry = MetricRegistry()
        histogram = registry.histogram("latency_ns", epsilon=0.05)
        for value in range(20_000):
            histogram.observe(value)
        # The whole point of GK-backed histograms: far fewer stored items
        # than observations.
        assert len(histogram.summary.item_array()) < 2_000


class TestSnapshotAndPayload:
    def _populated(self) -> MetricRegistry:
        registry = MetricRegistry()
        registry.counter("b_total", help="b").inc(2)
        registry.counter("a_total", help="a").inc(1)
        registry.gauge("gap", level="3").set(12)
        histogram = registry.histogram("lat_ns", operation="ingest")
        for value in (100, 200, 300, 400):
            histogram.observe(value)
        return registry

    def test_snapshot_is_json_compatible_and_sorted(self):
        snapshot = self._populated().snapshot()
        json.dumps(snapshot)
        assert list(snapshot["counters"]) == ["a_total", "b_total"]

    def test_payload_round_trip_preserves_snapshot(self):
        registry = self._populated()
        restored = MetricRegistry.from_payload(registry.to_payload())
        assert restored.snapshot() == registry.snapshot()
        # Quantiles survive exactly, not just approximately.
        original = registry.get("lat_ns", operation="ingest")
        copy = restored.get("lat_ns", operation="ingest")
        assert copy.quantiles() == original.quantiles()
        assert copy.sum == original.sum

    def test_payload_is_byte_stable_across_insertion_orders(self):
        first = MetricRegistry()
        first.counter("a_total").inc(1)
        first.counter("b_total").inc(2)
        second = MetricRegistry()
        second.counter("b_total").inc(2)
        second.counter("a_total").inc(1)
        assert json.dumps(first.to_payload()) == json.dumps(second.to_payload())

    def test_payload_is_json_serialisable(self):
        json.dumps(self._populated().to_payload())

    def test_bad_payload_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricRegistry.from_payload({"kind": "something-else"})
        with pytest.raises(ObservabilityError):
            MetricRegistry.from_payload({"kind": "metric-registry", "format": 99})


class TestMerge:
    def test_merge_semantics(self):
        left = MetricRegistry()
        left.counter("ops_total").inc(10)
        left.gauge("gap").set(1)
        left.histogram("lat_ns").observe(100)

        right = MetricRegistry()
        right.counter("ops_total").inc(5)
        right.gauge("gap").set(9)
        right.histogram("lat_ns").observe(300)

        left.merge(right)
        assert left.get("ops_total").value == 15   # counters add
        assert left.get("gap").value == 9          # gauges take incoming
        merged = left.get("lat_ns")
        assert merged.observations == 2            # histograms GK-merge
        assert merged.sum == 400

    def test_merge_kind_conflict_rejected(self):
        left = MetricRegistry()
        left.counter("thing")
        right = MetricRegistry()
        right.gauge("thing").set(1)
        with pytest.raises(ObservabilityError):
            left.merge(right)


class TestGlobalRegistry:
    def test_set_registry_swaps_and_restores(self):
        replacement = MetricRegistry()
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)
        assert get_registry() is previous
