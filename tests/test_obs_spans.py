"""Trace spans: nesting, JSONL output, the no-op path, and trace reading."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import TraceWriter, current_writer, event, read_trace, span, trace_to
from repro.obs.spans import NULL_SPAN


def _lines(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestTraceWriter:
    def test_header_first(self):
        sink = io.StringIO()
        TraceWriter(sink)
        header = _lines(sink)[0]
        assert header["kind"] == "trace-header"
        assert header["clock"] == "perf_counter_ns"

    def test_nested_spans_record_parents_and_durations(self):
        sink = io.StringIO()
        clock_values = iter(range(0, 1000, 10))
        writer = TraceWriter(sink, clock=lambda: next(clock_values))
        with writer.span("outer"):
            with writer.span("inner", depth=2):
                pass
        records = [r for r in _lines(sink) if r["kind"] == "span"]
        inner, outer = records  # inner closes (and is written) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["duration_ns"] > 0
        assert outer["start_ns"] <= inner["start_ns"]
        assert inner["end_ns"] <= outer["end_ns"]
        assert inner["attributes"] == {"depth": 2}

    def test_attributes_set_during_span(self):
        sink = io.StringIO()
        writer = TraceWriter(sink)
        with writer.span("work") as opened:
            opened.set(items=7, label="x")
        record = _lines(sink)[-1]
        assert record["attributes"] == {"items": 7, "label": "x"}

    def test_non_json_attributes_coerced_to_str(self):
        sink = io.StringIO()
        writer = TraceWriter(sink)
        with writer.span("work", interval=object()):
            pass
        attrs = _lines(sink)[-1]["attributes"]
        assert isinstance(attrs["interval"], str)

    def test_events_attach_to_current_span(self):
        sink = io.StringIO()
        writer = TraceWriter(sink)
        with writer.span("work") as opened:
            writer.event("tick", n=1)
        records = _lines(sink)
        tick = next(r for r in records if r["kind"] == "event")
        assert tick["span"] == opened.span_id
        assert tick["attributes"] == {"n": 1}

    def test_out_of_order_end_rejected(self):
        writer = TraceWriter(io.StringIO())
        first = writer.begin("a")
        writer.begin("b")
        with pytest.raises(ObservabilityError):
            writer.end(first)


class TestModuleLevelApi:
    def test_noop_without_writer(self):
        assert current_writer() is None
        with span("anything", x=1) as opened:
            assert opened is NULL_SPAN
            opened.set(more=2)  # swallowed, no error
        event("ignored")

    def test_trace_to_installs_and_removes_writer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace_to(path) as writer:
            assert current_writer() is writer
            with span("outer") as opened:
                assert opened is not NULL_SPAN
                event("inside")
        assert current_writer() is None
        records = read_trace(path)
        kinds = [record["kind"] for record in records]
        assert kinds == ["trace-header", "event", "span"]


class TestReadTrace:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_trace(tmp_path / "nope.jsonl")

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace-header"}\nnot json\n')
        with pytest.raises(ObservabilityError):
            read_trace(path)

    def test_foreign_jsonl_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"kind": "engine-checkpoint"}\n')
        with pytest.raises(ObservabilityError):
            read_trace(path)
