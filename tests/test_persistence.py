"""Serialisation round-trips for every registered summary type."""

import json

import pytest

from repro.model.registry import available_summaries
from repro.persistence import PersistenceError, dump, load
from repro.streams import random_stream
from repro.summaries.biased import BiasedQuantileSummary
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy
from repro.summaries.kll import KLL
from repro.summaries.mrl import MRL
from repro.summaries.offline import OfflineOptimal
from repro.summaries.qdigest import QDigest
from repro.summaries.req import RelativeErrorSketch
from repro.summaries.sampled import SampledGK
from repro.summaries.sampling import ReservoirSampling
from repro.summaries.sliding import SlidingWindowQuantiles
from repro.summaries.turnstile import TurnstileQuantiles
from repro.universe import Universe, key_of

# One factory per *registered* summary name; test_registry_fully_covered
# fails if a new summary type is registered without a round-trip entry here.
FACTORIES = {
    "gk": lambda: GreenwaldKhanna(1 / 16),
    "gk-greedy": lambda: GreenwaldKhannaGreedy(1 / 16),
    "biased": lambda: BiasedQuantileSummary(1 / 16),
    "kll": lambda: KLL(1 / 16, seed=5),
    "req": lambda: RelativeErrorSketch(1 / 4, k=16, seed=5),
    "mrl": lambda: MRL(1 / 16, n_hint=2000),
    "capped": lambda: CappedSummary(1 / 16, budget=12),
    "exact": lambda: ExactSummary(),
    "sampling": lambda: ReservoirSampling(1 / 8, m=64, seed=5),
    "sampled-gk": lambda: SampledGK(1 / 8, n_hint=500, seed=5),
    "offline": lambda: OfflineOptimal(1 / 16),
    "sliding-gk": lambda: SlidingWindowQuantiles(1 / 8, window=300, blocks=4),
    "qdigest": lambda: QDigest(1 / 16, universe_bits=12),
    "turnstile": lambda: TurnstileQuantiles(1 / 4, universe_bits=10, seed=5),
}


def test_registry_fully_covered():
    """Every summary registered in repro.model.registry must round-trip.

    Other test modules register throwaway types (their names contain
    "test") into the process-wide registry; only real types must be covered.
    """
    missing = {
        name for name in available_summaries() if "test" not in name
    } - set(FACTORIES)
    assert not missing, f"registered summaries without round-trip coverage: {missing}"
    assert set(FACTORIES) <= set(available_summaries())


def roundtrip(summary):
    payload = json.loads(json.dumps(dump(summary)))
    return load(payload)


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestRoundTrip:
    def test_basic_state_preserved(self, name):
        universe = Universe()
        summary = FACTORIES[name]()
        summary.process_all(random_stream(universe, 700, seed=1))
        restored = roundtrip(summary)
        assert restored.n == summary.n
        assert restored.max_item_count == summary.max_item_count
        assert restored.epsilon == pytest.approx(summary.epsilon)

    def test_item_array_values_preserved(self, name):
        universe = Universe()
        summary = FACTORIES[name]()
        summary.process_all(random_stream(universe, 500, seed=2))
        restored = roundtrip(summary)
        original_keys = [key_of(item) for item in summary.item_array()]
        restored_keys = [key_of(item) for item in restored.item_array()]
        assert restored_keys == original_keys

    def test_queries_identical_after_restore(self, name):
        universe = Universe()
        summary = FACTORIES[name]()
        summary.process_all(random_stream(universe, 600, seed=3))
        restored = roundtrip(summary)
        for percent in (0, 10, 50, 90, 100):
            phi = percent / 100
            assert key_of(restored.query(phi)) == key_of(summary.query(phi))

    def test_restored_summary_continues_identically(self, name):
        universe_a, universe_b = Universe(), Universe()
        original = FACTORIES[name]()
        original.process_all(random_stream(universe_a, 400, seed=4))
        restored = roundtrip(original)
        extra_a = random_stream(universe_a, 300, seed=5)
        extra_b = [Universe().item(key_of(item)) for item in extra_a]
        original.process_all(extra_a)
        restored.process_all(extra_b)
        assert [key_of(i) for i in restored.item_array()] == [
            key_of(i) for i in original.item_array()
        ]


class TestPayloadDetails:
    def test_payload_is_json_compatible(self):
        universe = Universe()
        summary = GreenwaldKhanna(1 / 8)
        summary.process_all(universe.items(range(100)))
        text = json.dumps(dump(summary))
        assert "GreenwaldKhanna" in text

    def test_fractional_keys_lossless(self):
        from fractions import Fraction

        universe = Universe()
        summary = ExactSummary()
        summary.process_all(
            universe.items([Fraction(1, 3), Fraction(22, 7), Fraction(-5, 9)])
        )
        restored = roundtrip(summary)
        assert [key_of(i) for i in restored.item_array()] == sorted(
            [Fraction(1, 3), Fraction(22, 7), Fraction(-5, 9)]
        )

    def test_unsupported_type_rejected(self):
        class NotASummary:
            epsilon = 0.5

        with pytest.raises(PersistenceError, match="cannot serialise"):
            dump(NotASummary())

    def test_bad_format_rejected(self):
        with pytest.raises(PersistenceError, match="unsupported format"):
            load({"format": 999, "type": "GreenwaldKhanna"})

    def test_unknown_type_rejected(self):
        with pytest.raises(PersistenceError, match="unknown summary type"):
            load({"format": 1, "type": "Nope"})

    def test_bad_key_rejected(self):
        payload = dump(_small_gk())
        payload["tuples"][0][0] = "not-a-key"
        with pytest.raises(PersistenceError, match="bad item key"):
            load(payload)

    def test_kll_rng_fast_forward(self):
        # After restore, the next compaction coin flips match the original's.
        universe = Universe()
        original = KLL(1 / 8, seed=9)
        original.process_all(random_stream(universe, 1000, seed=6))
        restored = roundtrip(original)
        assert restored._rng_draws == original._rng_draws
        assert [original._rng.randrange(2) for _ in range(8)] == [
            restored._rng.randrange(2) for _ in range(8)
        ]


def _small_gk():
    universe = Universe()
    summary = GreenwaldKhanna(1 / 8)
    summary.process_all(universe.items(range(20)))
    return summary


class TestRoundTripProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(sorted(FACTORIES)),
        seed=st.integers(min_value=0, max_value=10**6),
        length=st.integers(min_value=1, max_value=400),
        split=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_checkpoint_resume_equals_straight_run(self, name, seed, length, split):
        """dump/load at any point, keep streaming: same state as never pausing."""
        universe_a = Universe()
        items = random_stream(universe_a, length, seed=seed)
        checkpoint_at = int(split * length)

        straight = FACTORIES[name]()
        straight.process_all(items)

        paused = FACTORIES[name]()
        paused.process_all(items[:checkpoint_at])
        resumed = roundtrip(paused)
        resumed.process_all(items[checkpoint_at:])

        assert resumed.n == straight.n
        assert [key_of(i) for i in resumed.item_array()] == [
            key_of(i) for i in straight.item_array()
        ]
        assert resumed.fingerprint() == straight.fingerprint()
