"""Cross-cutting property-based tests for the adversarial construction.

These tie together the whole stack: for randomly drawn parameters and
summaries, every structural invariant the paper's proof relies on must hold
on the executed construction.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adversary import build_adversarial_pair
from repro.core.spacegap import claim1_violations, space_gap_violations
from repro.streams import Stream, random_stream
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy
from repro.summaries.kll import KLL
from repro.universe import Universe

SUMMARY_STRATEGY = st.sampled_from(
    [
        ("gk", lambda eps: GreenwaldKhanna(eps)),
        ("gk-greedy", lambda eps: GreenwaldKhannaGreedy(eps)),
        ("exact", lambda eps: ExactSummary(eps)),
        ("capped-7", lambda eps: CappedSummary(eps, budget=7)),
        ("capped-21", lambda eps: CappedSummary(eps, budget=21)),
        ("kll-s1", lambda eps: KLL(eps, seed=1)),
        ("kll-small", lambda eps: KLL(eps, k=6, seed=2)),
    ]
)


@settings(max_examples=20, deadline=None)
@given(
    summary=SUMMARY_STRATEGY,
    inverse_eps=st.sampled_from([8, 16, 32]),
    k=st.integers(min_value=1, max_value=4),
)
def test_adversary_invariants_hold_for_any_summary(summary, inverse_eps, k):
    _, factory = summary
    # validate=True raises on any indistinguishability or Observation 1
    # breach at any node; the checks below add Claim 1 and Lemma 5.2.
    result = build_adversarial_pair(
        factory, epsilon=Fraction(1, inverse_eps), k=k, validate=True
    )
    assert result.length == inverse_eps * 2 * 2 ** (k - 1)
    assert claim1_violations(result) == []
    assert space_gap_violations(result) == []
    for node in result.nodes():
        assert node.gap >= 1
        assert node.space >= 2  # at least min and max of the interval


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    length=st.integers(min_value=10, max_value=600),
    inverse_eps=st.sampled_from([4, 8, 16]),
)
def test_gk_and_greedy_agree_on_guarantee(seed, length, inverse_eps):
    universe = Universe()
    items = random_stream(universe, length, seed=seed)
    epsilon = Fraction(1, inverse_eps)
    band = GreenwaldKhanna(epsilon)
    greedy = GreenwaldKhannaGreedy(epsilon)
    stream = Stream()
    for item in items:
        band.process(item)
        greedy.process(item)
        stream.append(item)
    n = length
    for j in range(0, inverse_eps + 1):
        phi = Fraction(j, inverse_eps)
        target = max(1, min(n, int(phi * n)))
        for summary in (band, greedy):
            rank = stream.rank(summary.query(float(phi)))
            assert abs(rank - target) <= epsilon * n + 1


@settings(max_examples=15, deadline=None)
@given(
    inverse_eps=st.sampled_from([16, 32]),
    k=st.integers(min_value=2, max_value=4),
    budget=st.integers(min_value=4, max_value=12),
)
def test_lemma_34_dichotomy(inverse_eps, k, budget):
    """Either the gap respects 2 eps N, or a failing quantile exists."""
    from repro.core.attacks import find_failing_quantile

    result = build_adversarial_pair(
        CappedSummary, epsilon=Fraction(1, inverse_eps), k=k, budget=budget
    )
    witness = find_failing_quantile(result)
    gap = result.final_gap().gap
    bound = 2 * result.epsilon * result.length
    if witness is None:
        assert gap <= bound
    else:
        assert gap > bound
        assert witness.failed
