"""The compiled read path: frozen rank indexes (repro.model.rankindex).

Three pillars:

* the **answer-identity property** — for every registered type with a
  ``compile_index`` builder, the compiled index's ``quantile``/``rank``
  answers are identical to the uncompiled ``query``/``estimate_rank``
  answers over random streams (with duplicate keys) and phi grids
  including the 0 and 1 edge cases, probe values at, between, below, and
  above the stored keys, and the empty-summary error behaviour;
* the **engine cache contract** — the engine's index is compiled once per
  ingest generation, reused across reads (hit/miss/compile counters), and
  rebuilt after the next ingest; batched ``quantiles``/``rank_many`` count
  one query per call and match the per-call answers;
* the **snapshot lifetime contract** — a snapshot compiles lazily on first
  read and serves the same frozen index for its whole epoch.
"""

import io
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.summaries  # noqa: F401  (registers every summary type)
from repro.cli import main as cli_main
from repro.engine import EngineConfig, ShardedQuantileEngine
from repro.errors import EmptySummaryError, InvalidQuantileError
from repro.model.rankindex import (
    RankIndex,
    compile_generic_index,
    compile_rank_index,
)
from repro.model.registry import create_summary, descriptors
from repro.model.summary import QuantileSummary
from repro.service.snapshots import Snapshot, SnapshotStore
from repro.universe.item import key_of
from repro.universe.universe import Universe

INDEXED_TYPES = [
    descriptor.name
    for descriptor in descriptors()
    if descriptor.compile_index is not None
]

EDGE_PHIS = [0.0, 1.0, 0.5, 0.25, 0.75, 0.01, 0.99]


def _make(name: str, epsilon: float, n: int) -> QuantileSummary:
    if name == "mrl":
        return create_summary(name, epsilon, n_hint=max(1, n))
    return create_summary(name, epsilon)


class TestIndexedTypeSet:
    def test_expected_builders_are_registered(self):
        assert INDEXED_TYPES == [
            "biased",
            "exact",
            "gk",
            "gk-greedy",
            "kll",
            "mrl",
            "offline",
            "req",
            "sampling",
        ]

    def test_dispatcher_returns_none_for_unindexed_types(self):
        summary = create_summary("qdigest", 0.1)
        assert compile_rank_index(summary) is None


class TestAnswerIdentity:
    """Indexed answers must equal the uncompiled path bit for bit."""

    @settings(max_examples=15, deadline=None)
    @given(
        raw=st.lists(
            # A narrow value range so duplicate stored keys are common.
            st.integers(min_value=0, max_value=60),
            min_size=1,
            max_size=160,
        ),
        phis=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            max_size=12,
        ),
        epsilon=st.sampled_from([0.02, 0.1]),
    )
    def test_quantiles_and_ranks_match_uncompiled(self, raw, phis, epsilon):
        for name in INDEXED_TYPES:
            values = [Fraction(value, 3) for value in raw]
            universe = Universe()
            summary = _make(name, epsilon, len(values))
            summary.process_many(universe.items(values))

            index = compile_rank_index(summary)
            assert isinstance(index, RankIndex), name

            for phi in EDGE_PHIS + phis:
                expected = summary.query(phi)
                assert key_of(index.quantile(phi)) == key_of(expected), (
                    name,
                    phi,
                )

            # Probes at stored keys (duplicates included), between adjacent
            # keys, and outside the stored range on both sides.
            probes = sorted(set(values))
            probes += [low + Fraction(1, 6) for low in probes[:20]]
            probes += [min(values) - 1, max(values) + 1]
            for probe in probes:
                expected_rank = summary.estimate_rank(universe.item(probe))
                assert index.rank(probe) == expected_rank, (name, probe)

    def test_batched_answers_match_and_preserve_input_order(self):
        values = [Fraction(value) for value in range(1, 400)]
        phis = [0.9, 0.1, 0.5, 0.5, 0.0, 1.0]
        for name in INDEXED_TYPES:
            summary = _make(name, 0.05, len(values))
            summary.process_many(Universe().items(values))
            index = compile_rank_index(summary)
            batched = index.quantile_many(phis)
            assert [key_of(item) for item in batched] == [
                key_of(summary.query(phi)) for phi in phis
            ], name
            keys = [Fraction(7), Fraction(395), Fraction(-1)]
            universe = Universe()
            assert index.rank_many(keys) == [
                summary.estimate_rank(universe.item(key)) for key in keys
            ], name

    def test_empty_summaries_behave_like_the_uncompiled_path(self):
        for name in INDEXED_TYPES:
            index = compile_rank_index(_make(name, 0.1, 8))
            with pytest.raises(EmptySummaryError):
                index.quantile(0.5)
            if name == "exact":
                # The one registered type whose estimate_rank answers 0 on
                # an empty summary (a bare bisect) instead of raising.
                assert index.rank(Fraction(3)) == 0
            else:
                with pytest.raises(EmptySummaryError):
                    index.rank(Fraction(3))

    def test_invalid_phi_rejected_like_the_uncompiled_path(self):
        summary = _make("gk", 0.1, 10)
        summary.process_many(Universe().items([Fraction(i) for i in range(10)]))
        index = compile_rank_index(summary)
        for phi in (-0.01, 1.01):
            with pytest.raises(InvalidQuantileError):
                index.quantile(phi)

    def test_quantile_memo_returns_identical_items(self):
        summary = _make("gk", 0.05, 100)
        summary.process_many(Universe().items([Fraction(i) for i in range(100)]))
        index = compile_rank_index(summary)
        assert index.quantile(0.5) is index.quantile(0.5)

    def test_generic_builder_stays_within_epsilon(self):
        # The generic builder promises epsilon-correctness, not identity.
        n, epsilon = 2000, 0.05
        summary = _make("gk", epsilon, n)
        summary.process_many(Universe().items([Fraction(i) for i in range(1, n + 1)]))
        index = compile_generic_index(summary)
        for phi in (0.0, 0.1, 0.5, 0.9, 1.0):
            answer = index.quantile(phi)
            rank = int(key_of(answer))  # value == rank in this stream
            target = max(1, min(n, phi * n))
            assert abs(rank - target) <= 2 * epsilon * n + 1, phi


class TestEngineReadIndex:
    def _engine(self, shards=2, summary="gk"):
        engine = ShardedQuantileEngine(
            EngineConfig(summary=summary, shards=shards, epsilon=0.02)
        )
        engine.ingest(range(1000))
        return engine

    def _counters(self, engine):
        return engine.stats()["telemetry"]["counters"]

    def test_index_compiled_once_and_reused_across_reads(self):
        engine = self._engine()
        first = engine.read_index()
        assert isinstance(first, RankIndex)
        assert engine.read_index() is first
        engine.query(0.5)
        engine.quantiles([0.1, 0.9])
        assert engine.read_index() is first
        counters = self._counters(engine)
        assert counters["read_index_compiles"] == 1
        assert counters["read_index_misses"] == 1
        assert counters["read_index_hits"] >= 4

    def test_ingest_invalidates_the_index(self):
        engine = self._engine()
        before = engine.read_index()
        assert key_of(before.quantile(0.5)) == engine.query(0.5)
        engine.ingest(range(1000, 2000))
        after = engine.read_index()
        assert after is not before
        assert after.n == 2000
        assert self._counters(engine)["read_index_compiles"] == 2

    def test_batched_reads_count_once_per_call(self):
        engine = self._engine()
        engine.quantiles([0.1, 0.5, 0.9])
        engine.rank_many([100, 500, 900])
        assert self._counters(engine)["queries_answered"] == 2

    def test_batched_answers_match_per_call_reads(self):
        engine = self._engine()
        phis = [0.05, 0.25, 0.5, 0.75, 0.95]
        assert engine.quantiles(phis) == [engine.query(phi) for phi in phis]
        probes = [0, 250, 500, 999, 10_000]
        assert engine.rank_many(probes) == [engine.rank(v) for v in probes]

    def test_unsupported_summary_type_falls_back(self):
        # sliding-gk has a merge but no compile_index: reads must still work
        # and the unsupported outcome must be cached (one miss, then hits).
        engine = ShardedQuantileEngine(
            EngineConfig(summary="gk", shards=1, epsilon=0.05)
        )
        engine.ingest(range(100))
        assert engine.read_index() is not None
        no_index = ShardedQuantileEngine(
            EngineConfig(summary="kll", shards=1, epsilon=0.05)
        )
        no_index.ingest(range(100))
        # Simulate an unindexed merged type by clearing the registry hook:
        # qdigest/turnstile are not mergeable, so exercise the fallback via
        # the dispatcher directly instead.
        assert compile_rank_index(create_summary("turnstile", 0.1)) is None

    def test_restored_engine_compiles_fresh(self, tmp_path):
        engine = self._engine()
        engine.query(0.5)
        path = tmp_path / "ck.jsonl"
        engine.checkpoint(path)
        restored = ShardedQuantileEngine.restore(path)
        phis = [0.1, 0.5, 0.9]
        assert restored.quantiles(phis) == engine.quantiles(phis)


class TestSnapshotReadIndex:
    def _snapshot(self, n=500):
        engine = ShardedQuantileEngine(
            EngineConfig(summary="gk", shards=2, epsilon=0.02)
        )
        engine.ingest(range(n))
        store = SnapshotStore()
        return store.publish(engine)

    def test_lazy_compile_then_reuse_for_snapshot_lifetime(self):
        snapshot = self._snapshot()
        assert not snapshot.index_ready
        first = snapshot.read_index()
        assert isinstance(first, RankIndex)
        assert snapshot.index_ready
        snapshot.query(0.5)
        snapshot.rank(Fraction(100))
        assert snapshot.read_index() is first

    def test_batched_snapshot_reads_match_per_call(self):
        snapshot = self._snapshot()
        phis = [0.9, 0.1, 0.5]
        assert snapshot.query_many(phis) == [snapshot.query(phi) for phi in phis]
        values = [Fraction(10), Fraction(499), Fraction(-3)]
        assert snapshot.rank_many(values) == [
            snapshot.rank(value) for value in values
        ]

    def test_empty_snapshot_raises_without_compiling(self):
        snapshot = Snapshot(epoch=0, items=0, summary=None, published_ns=0)
        with pytest.raises(EmptySummaryError, match="epoch 0"):
            snapshot.query_many([0.5])
        with pytest.raises(EmptySummaryError, match="epoch 0"):
            snapshot.rank_many([Fraction(1)])
        assert not snapshot.index_ready


class TestQuantilesQueryCLI:
    def _write(self, tmp_path, values):
        path = tmp_path / "data.txt"
        path.write_text("\n".join(str(value) for value in values) + "\n")
        return str(path)

    def test_batched_query_reports_answers_in_input_order(self, tmp_path):
        path = self._write(tmp_path, range(1, 1001))
        out = io.StringIO()
        code = cli_main(
            [
                "quantiles",
                "query",
                "--input",
                path,
                "--epsilon",
                "0.01",
                "--phis",
                "0.9,0.1,0.5",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "compiled index" in text
        lines = [line for line in text.splitlines() if line.startswith("phi = ")]
        assert [line.split(":")[0] for line in lines] == [
            "phi = 0.9",
            "phi = 0.1",
            "phi = 0.5",
        ]
        median = int(lines[2].split(":")[1].strip())
        assert abs(median - 500) <= 11

    def test_flat_quantiles_invocation_still_works(self, tmp_path):
        path = self._write(tmp_path, range(1, 101))
        out = io.StringIO()
        assert (
            cli_main(
                ["quantiles", "--input", path, "--epsilon", "0.05", "--phi", "0.5"],
                out=out,
            )
            == 0
        )
        assert "phi = 0.5" in out.getvalue()

    def test_bad_phis_rejected(self, tmp_path):
        path = self._write(tmp_path, range(1, 11))
        with pytest.raises(SystemExit, match="numbers"):
            cli_main(
                ["quantiles", "query", "--input", path, "--phis", "0.5,oops"],
                out=io.StringIO(),
            )
