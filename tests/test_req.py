"""Relative-error compactor sketch (the §6.4 future-work extension)."""

import pytest

from repro.streams import Stream, random_stream
from repro.summaries.biased import BiasedQuantileSummary
from repro.summaries.req import RelativeErrorSketch
from repro.universe import Universe


class TestStructure:
    def test_registered(self):
        from repro.model.registry import create_summary

        assert create_summary("req", 0.1).name == "req"

    def test_k_rounding_and_floor(self):
        sketch = RelativeErrorSketch(0.1, k=10)
        assert sketch.k % 4 == 0
        with pytest.raises(ValueError):
            RelativeErrorSketch(0.1, k=4)

    def test_weights_conserved(self):
        universe = Universe()
        sketch = RelativeErrorSketch(0.1, seed=0)
        sketch.process_all(random_stream(universe, 5001, seed=1))
        assert sum(weight for _, weight in sketch._weighted_items()) == 5001

    def test_item_array_sorted(self):
        universe = Universe()
        sketch = RelativeErrorSketch(0.1, seed=0)
        sketch.process_all(random_stream(universe, 2000, seed=2))
        array = sketch.item_array()
        assert all(a <= b for a, b in zip(array, array[1:]))

    def test_deterministic_per_seed(self):
        fingerprints = []
        for _ in range(2):
            universe = Universe()
            sketch = RelativeErrorSketch(0.1, seed=7)
            sketch.process_all(random_stream(universe, 3000, seed=3))
            fingerprints.append(sketch.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_space_sublinear(self):
        universe = Universe()
        sketch = RelativeErrorSketch(0.1, seed=0)
        sketch.process_all(random_stream(universe, 30_000, seed=4))
        assert sketch.max_item_count < 30_000 / 10


class TestRelativeError:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_relative_error_across_rank_scales(self, seed):
        universe = Universe()
        n = 20_000
        items = random_stream(universe, n, seed=seed)
        sketch = RelativeErrorSketch(0.1, seed=seed)
        stream = Stream()
        for item in items:
            sketch.process(item)
            stream.append(item)
        for target in (10, 50, 200, 1000, 5000, 10_000, 19_000):
            rank = stream.rank(sketch.query(target / n))
            assert abs(rank - target) <= 0.1 * target + 2, (
                f"relative error exceeded at rank {target}"
            )

    def test_lowest_ranks_exact(self):
        # The globally smallest items live in protected prefixes forever.
        universe = Universe()
        n = 10_000
        items = random_stream(universe, n, seed=5)
        sketch = RelativeErrorSketch(0.1, seed=0)
        stream = Stream()
        for item in items:
            sketch.process(item)
            stream.append(item)
        for target in (1, 3, 8):
            assert stream.rank(sketch.query(target / n)) == target

    def test_rank_estimates_relative(self):
        universe = Universe()
        n = 10_000
        sketch = RelativeErrorSketch(0.1, seed=1)
        sketch.process_all(universe.items(range(1, n + 1)))
        for target in (20, 500, 5000):
            estimate = sketch.estimate_rank(universe.item(target))
            assert abs(estimate - target) <= 0.1 * target + 2

    def test_space_growth_sublogarithmic_like_biased_summary(self):
        # Both relative-error structures grow polylogarithmically; quadrupling
        # N must grow each far less than 4x.  (At these stream lengths the
        # deterministic summary's constant is smaller than our REQ's — the
        # asymptotic separation Section 6.4 leaves open is not visible at
        # n = 10^4, and the test does not pretend otherwise.)
        universe = Universe()
        sizes = {"req": [], "biased": []}
        for n in (10_000, 40_000):
            items = random_stream(universe, n, seed=6)
            sketch = RelativeErrorSketch(1 / 10, seed=0)
            deterministic = BiasedQuantileSummary(1 / 10)
            for item in items:
                sketch.process(item)
                deterministic.process(item)
            sizes["req"].append(sketch.max_item_count)
            sizes["biased"].append(deterministic.max_item_count)
        assert sizes["req"][1] < 2 * sizes["req"][0]
        assert sizes["biased"][1] < 2 * sizes["biased"][0]


class TestMerge:
    def test_merge_preserves_weight_and_low_ranks(self):
        universe = Universe()
        a = RelativeErrorSketch(0.1, seed=0)
        b = RelativeErrorSketch(0.1, seed=1)
        items = random_stream(universe, 8000, seed=7)
        a.process_all(items[:4000])
        b.process_all(items[4000:])
        a.merge(b)
        assert a.n == 8000
        assert sum(weight for _, weight in a._weighted_items()) == 8000
        stream = Stream()
        stream.extend(items)
        for target in (5, 40, 400, 4000):
            rank = stream.rank(a.query(target / 8000))
            assert abs(rank - target) <= 0.15 * target + 2

    def test_merge_type_checked(self):
        from repro.summaries.kll import KLL

        with pytest.raises(TypeError):
            RelativeErrorSketch(0.1).merge(KLL(0.1, seed=0))


class TestUnderTheAdversary:
    def test_seeded_req_is_attackable_and_checks_hold(self):
        from repro.core.adversary import build_adversarial_pair
        from repro.core.spacegap import claim1_violations, space_gap_violations

        result = build_adversarial_pair(
            lambda eps: RelativeErrorSketch(eps, k=16, seed=3), epsilon=1 / 16, k=4
        )
        assert claim1_violations(result) == []
        assert space_gap_violations(result) == []
