"""Sampled GK (Felber-Ostrovsky lineage): sampling + summary composition."""

import pytest

from repro.streams import Stream, random_stream
from repro.summaries.sampled import SampledGK, required_sample_size
from repro.universe import Universe


class TestSizing:
    def test_required_sample_size_shapes(self):
        assert required_sample_size(0.01) > required_sample_size(0.1)
        assert required_sample_size(0.1, delta=1e-8) > required_sample_size(
            0.1, delta=0.1
        )

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            required_sample_size(0.1, delta=0)

    def test_n_hint_validation(self):
        with pytest.raises(ValueError):
            SampledGK(0.1, n_hint=0)

    def test_rate_capped_at_one(self):
        summary = SampledGK(0.1, n_hint=10)
        assert summary.sample_rate == 1.0

    def test_rate_shrinks_for_long_streams(self):
        summary = SampledGK(0.1, n_hint=10**7)
        assert summary.sample_rate < 0.01


class TestBehaviour:
    def test_samples_everything_at_rate_one(self, universe):
        summary = SampledGK(0.1, n_hint=50, seed=0)
        summary.process_all(universe.items(range(50)))
        assert summary.sampled_count == 50

    def test_first_item_always_sampled(self, universe):
        summary = SampledGK(0.1, n_hint=10**9, seed=0)
        summary.process(universe.item(42))
        assert summary.sampled_count == 1
        assert summary.query(0.5) == universe.item(42)

    def test_space_far_below_stream(self):
        universe = Universe()
        epsilon, n = 1 / 10, 40_000
        summary = SampledGK(epsilon, n_hint=n, seed=0)
        summary.process_all(random_stream(universe, n, seed=7))
        # The sample itself is ~ 8 ln(200) / eps^2 ~ 4200; GK compresses it.
        assert summary.sampled_count < n / 4
        assert summary.max_item_count < 600

    def test_accuracy_on_long_stream(self):
        universe = Universe()
        epsilon, n = 1 / 10, 30_000
        items = random_stream(universe, n, seed=8)
        summary = SampledGK(epsilon, n_hint=n, delta=1e-4, seed=0)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        for percent in range(10, 100, 20):
            phi = percent / 100
            rank = stream.rank(summary.query(phi))
            assert abs(rank - phi * n) <= epsilon * n + 1

    def test_rank_estimates_scale_to_stream(self):
        universe = Universe()
        n = 20_000
        summary = SampledGK(1 / 10, n_hint=n, delta=1e-4, seed=1)
        summary.process_all(universe.items(range(1, n + 1)))
        estimate = summary.estimate_rank(universe.item(n // 2))
        assert abs(estimate - n // 2) <= n / 10 + 1

    def test_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            universe = Universe()
            summary = SampledGK(1 / 10, n_hint=5000, seed=3)
            summary.process_all(random_stream(universe, 5000, seed=9))
            results.append(summary.fingerprint())
        assert results[0] == results[1]

    def test_attackable_once_seeded(self):
        # Theorem 6.4's reduction applies to the seeded variant too: the
        # adversary runs and all proof checks hold.
        from repro.core.adversary import build_adversarial_pair
        from repro.core.spacegap import claim1_violations, space_gap_violations

        result = build_adversarial_pair(
            lambda eps: SampledGK(eps, n_hint=512, seed=5), epsilon=1 / 16, k=4
        )
        assert claim1_violations(result) == []
        assert space_gap_violations(result) == []
