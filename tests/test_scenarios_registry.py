"""The scenario catalog and its deterministic traffic generation."""

from fractions import Fraction

import pytest

from repro.scenarios import SCENARIOS, get_scenario, insert_batches, scenario_names
from repro.scenarios.registry import Scenario, ScenarioError
from repro.scenarios.traffic import connector_source, connector_values


class TestCatalog:
    def test_catalog_names_sorted_and_nonempty(self):
        names = scenario_names()
        assert names == sorted(names)
        assert {"adversarial", "heavy-tail", "flash-crowd",
                "connector-replay", "read-storm"} <= set(names)

    def test_every_catalog_entry_validates(self):
        for scenario in SCENARIOS.values():
            assert scenario.validate() is scenario

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("nope")

    def test_get_scenario_overrides(self):
        scenario = get_scenario("sorted", inserts=3, readers=1)
        assert scenario.inserts == 3 and scenario.readers == 1
        # The catalog entry itself is untouched (frozen dataclass + replace).
        assert SCENARIOS["sorted"].inserts != 3 or SCENARIOS["sorted"].readers != 1

    def test_invalid_override_rejected(self):
        with pytest.raises(ScenarioError, match="pattern"):
            get_scenario("sorted", pattern="bogus")
        with pytest.raises(ScenarioError, match="at least one insert"):
            get_scenario("sorted", inserts=0)
        with pytest.raises(ScenarioError, match="shed_budget"):
            get_scenario("sorted", shed_budget=2.0)

    def test_rank_error_budget_falls_back_to_engine_epsilon(self):
        scenario = get_scenario("sorted")
        assert scenario.rank_error_budget == scenario.engine_epsilon
        tightened = get_scenario("sorted", epsilon_budget=0.001)
        assert tightened.rank_error_budget == 0.001

    def test_config_payload_carries_pattern_extras(self):
        assert "adversary" in get_scenario("adversarial").config_payload()
        assert "heavy_tail_alpha" in get_scenario("heavy-tail").config_payload()
        assert "burst_every" in get_scenario("flash-crowd").config_payload()
        assert "source" in get_scenario("connector-replay").config_payload()


SMALL = dict(inserts=4, values_per_insert=25)


class TestTraffic:
    def test_same_seed_same_batches(self):
        for name in ("sorted", "heavy-tail", "flash-crowd", "zoomin"):
            scenario = get_scenario(name, **SMALL)
            assert insert_batches(scenario, 3) == insert_batches(scenario, 3)

    def test_different_seed_different_batches_for_random_patterns(self):
        scenario = get_scenario("heavy-tail", **SMALL)
        assert insert_batches(scenario, 0) != insert_batches(scenario, 1)

    def test_sorted_and_reversed_are_monotone(self):
        up = [v for batch in insert_batches(get_scenario("sorted", **SMALL), 0)
              for v in batch]
        down = [v for batch in
                insert_batches(get_scenario("reversed", **SMALL), 0)
                for v in batch]
        assert up == sorted(up)
        assert down == sorted(down, reverse=True)
        assert up == down[::-1]

    def test_flash_crowd_bursts(self):
        scenario = get_scenario(
            "flash-crowd", inserts=8, values_per_insert=10, burst_every=4,
            burst_factor=5,
        )
        sizes = [len(batch) for batch in insert_batches(scenario, 0)]
        assert sizes == [10, 10, 10, 50, 10, 10, 10, 50]

    def test_adversarial_batches_are_exact_rationals(self):
        scenario = get_scenario("adversarial", values_per_insert=64)
        batches = insert_batches(scenario, 0)
        values = [v for batch in batches for v in batch]
        assert values, "adversarial stream must be non-empty"
        assert all(isinstance(v, Fraction) for v in values)
        # Fixed by (epsilon, k), independent of the seed.
        assert insert_batches(scenario, 99) == batches

    def test_values_respect_range(self):
        for name in ("heavy-tail", "flash-crowd", "read-storm"):
            scenario = get_scenario(name, **SMALL)
            lo, hi = scenario.value_range
            for batch in insert_batches(scenario, 5):
                assert all(lo <= v <= hi for v in batch)

    def test_unknown_pattern_raises(self):
        scenario = Scenario(name="x", description="", pattern="uniform")
        broken = Scenario(name="x", description="", pattern="uniform")
        object.__setattr__(broken, "pattern", "martian")
        with pytest.raises(ScenarioError, match="unknown pattern"):
            insert_batches(broken, 0)
        assert insert_batches(scenario, 0)


class TestConnectorTraffic:
    def test_connector_pattern_has_no_writer_batches(self):
        scenario = get_scenario("connector-replay")
        assert insert_batches(scenario, 0) == []

    def test_synthetic_ground_truth_is_seeded(self):
        scenario = get_scenario("connector-replay", synthetic_records=200)
        assert connector_values(scenario, 1) == connector_values(scenario, 1)
        assert connector_values(scenario, 1) != connector_values(scenario, 2)
        lo, hi = scenario.value_range
        assert all(lo <= v <= hi for v in connector_values(scenario, 1))

    def test_file_source_skips_poison_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"value": 1}\n'
            "not json at all\n"
            '{"value": 2}\n'
            '{"other": 3}\n'
            '{"value": "NaN"}\n'
            '{"value": 4}\n'
        )
        scenario = get_scenario("connector-replay", source=str(path))
        assert connector_values(scenario, 0) == [
            Fraction(1), Fraction(2), Fraction(4)
        ]
        assert connector_source(scenario, 0).kind == "jsonl"
