"""The sequential (Hung-Ting-style) zooming adversary."""

import pytest

from repro.core.sequential import sequential_adversary
from repro.errors import AdversaryError
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.gk import GreenwaldKhanna


class TestStructure:
    def test_stream_length(self):
        result = sequential_adversary(GreenwaldKhanna, epsilon=1 / 8, rounds=5)
        assert result.length == 5 * 16
        assert len(result.rounds) == 5

    def test_custom_batch(self):
        result = sequential_adversary(GreenwaldKhanna, epsilon=1 / 8, rounds=3, batch=10)
        assert result.length == 30

    def test_validation(self):
        with pytest.raises(AdversaryError):
            sequential_adversary(GreenwaldKhanna, epsilon=1 / 8, rounds=0)
        with pytest.raises(AdversaryError):
            sequential_adversary(GreenwaldKhanna, epsilon=1 / 8, rounds=2, batch=1)

    def test_round_lengths_monotone(self):
        result = sequential_adversary(GreenwaldKhanna, epsilon=1 / 8, rounds=6)
        lengths = [r.length_after for r in result.rounds]
        assert lengths == sorted(lengths)
        assert lengths[-1] == result.length


class TestBehaviour:
    def test_indistinguishability_maintained(self):
        # validate=True checks after every round; completing is the assertion.
        result = sequential_adversary(
            CappedSummary, epsilon=1 / 16, rounds=8, budget=10
        )
        result.pair.check_indistinguishable()

    def test_gap_accumulates_against_capped(self):
        result = sequential_adversary(
            CappedSummary, epsilon=1 / 16, rounds=10, budget=8
        )
        gaps = [r.full_gap for r in result.rounds]
        assert gaps[-1] > gaps[0]
        assert gaps[-1] > 2 * (1 / 16) * result.length  # defeats the summary

    def test_full_gap_never_decreases(self):
        result = sequential_adversary(
            CappedSummary, epsilon=1 / 16, rounds=8, budget=8
        )
        gaps = [r.full_gap for r in result.rounds]
        assert all(a <= b for a, b in zip(gaps, gaps[1:]))

    def test_exact_summary_keeps_gap_one(self):
        result = sequential_adversary(ExactSummary, epsilon=1 / 8, rounds=5)
        assert result.final_gap().gap == 1

    def test_gk_survives_sequential_attack(self):
        result = sequential_adversary(GreenwaldKhanna, epsilon=1 / 16, rounds=16)
        assert result.final_gap().gap <= 2 * (1 / 16) * result.length

    def test_gk_pays_logarithmic_space(self):
        small = sequential_adversary(GreenwaldKhanna, epsilon=1 / 16, rounds=4)
        large = sequential_adversary(GreenwaldKhanna, epsilon=1 / 16, rounds=32)
        # 8x more rounds, far less than 8x more space.
        assert large.max_items_stored() < 3 * small.max_items_stored()


class TestExperimentA6:
    def test_matched_lengths(self):
        from repro.experiments import run_experiment

        gap_table, space_table = run_experiment(
            "A6", epsilon=1 / 16, k_values=(2, 3), budget=10
        )
        assert len(gap_table.rows) == 2
        assert len(space_table.rows) == 2

    def test_a7_identical_columns(self):
        from repro.experiments import run_experiment

        per_level, summary, sample = run_experiment("A7", epsilon=1 / 8, k=3)
        assert set(per_level.column("identical")) == {"yes"}
        assert set(summary.column("identical")) == {"yes"}
