"""The online accuracy auditor: reservoir, admission, violations, metrics."""

import asyncio
from fractions import Fraction

import pytest

from repro.engine import EngineConfig
from repro.errors import ServiceError
from repro.obs.registry import MetricRegistry
from repro.service import QuantileClient, QuantileService, ServiceConfig
from repro.service.audit import AccuracyAuditor, AuditConfig


def make_auditor(**config) -> AccuracyAuditor:
    defaults = dict(fraction=1.0, reservoir=64, seed=0)
    defaults.update(config)
    return AccuracyAuditor(
        MetricRegistry(), epsilon=0.02, config=AuditConfig(**defaults)
    )


class TestConfig:
    def test_validate_rejects_bad_fraction(self):
        with pytest.raises(ServiceError, match="fraction"):
            AuditConfig(fraction=1.5).validate()
        with pytest.raises(ServiceError, match="fraction"):
            AuditConfig(fraction=-0.1).validate()

    def test_validate_rejects_bad_reservoir(self):
        with pytest.raises(ServiceError, match="reservoir"):
            AuditConfig(reservoir=0).validate()

    def test_service_config_validates_audit_knobs(self):
        with pytest.raises(ServiceError, match="fraction"):
            ServiceConfig(audit_fraction=2.0).validate()


class TestReservoir:
    def test_fills_to_capacity_then_stays_bounded(self):
        auditor = make_auditor(reservoir=16)
        auditor.observe_batch([Fraction(i) for i in range(100)])
        assert len(auditor.sample) == 16
        assert auditor.seen == 100

    def test_same_seed_same_sample(self):
        one, two = make_auditor(seed=5), make_auditor(seed=5)
        values = [Fraction(i) for i in range(500)]
        one.observe_batch(values)
        two.observe_batch(values)
        assert one.sample == two.sample

    def test_batch_splitting_does_not_change_the_sample(self):
        whole, split = make_auditor(seed=3), make_auditor(seed=3)
        values = [Fraction(i) for i in range(300)]
        whole.observe_batch(values)
        for start in range(0, 300, 7):
            split.observe_batch(values[start:start + 7])
        assert whole.sample == split.sample

    def test_disabled_auditor_ignores_everything(self):
        auditor = make_auditor(fraction=0.0)
        auditor.observe_batch([Fraction(1)])
        assert not auditor.enabled
        assert auditor.sample == []
        assert auditor.maybe_audit([(0.5, Fraction(1))]) is False

    def test_estimated_rank_fraction(self):
        auditor = make_auditor(reservoir=100)
        auditor.observe_batch([Fraction(i) for i in range(1, 101)])
        assert auditor.estimated_rank_fraction(Fraction(50)) == Fraction(1, 2)
        assert make_auditor().estimated_rank_fraction(Fraction(1)) is None


class TestAuditing:
    def test_accurate_answers_do_not_violate(self):
        auditor = make_auditor(reservoir=1000)
        values = [Fraction(i) for i in range(1, 1001)]
        auditor.observe_batch(values)
        audited = auditor.maybe_audit(
            [(0.25, Fraction(250)), (0.5, Fraction(500)), (0.9, Fraction(900))]
        )
        assert audited is True
        registry = auditor.registry
        assert registry.get("service_audits_total").value == 1
        assert registry.get("service_rank_error_violations_total").value == 0
        assert registry.get("service_rank_error").observations == 3

    def test_garbage_answers_violate(self):
        auditor = make_auditor(reservoir=1000)
        auditor.observe_batch([Fraction(i) for i in range(1, 1001)])
        auditor.maybe_audit([(0.9, Fraction(1)), (0.1, Fraction(1000))])
        assert (
            auditor.registry.get("service_rank_error_violations_total").value
            == 2
        )

    def test_admission_fraction_zero_vs_one(self):
        eager = make_auditor(fraction=1.0)
        eager.observe_batch([Fraction(1)])
        assert eager.maybe_audit([(0.5, Fraction(1))]) is True
        # fraction just over 0: the admission RNG decides; seeded, so the
        # sequence of decisions is reproducible.
        one, two = make_auditor(fraction=0.3, seed=9), make_auditor(
            fraction=0.3, seed=9
        )
        for auditor in (one, two):
            auditor.observe_batch([Fraction(i) for i in range(10)])
        decisions_one = [
            one.maybe_audit([(0.5, Fraction(5))]) for _ in range(50)
        ]
        decisions_two = [
            two.maybe_audit([(0.5, Fraction(5))]) for _ in range(50)
        ]
        assert decisions_one == decisions_two
        assert any(decisions_one) and not all(decisions_one)

    def test_empty_reservoir_never_audits(self):
        auditor = make_auditor(fraction=1.0)
        assert auditor.maybe_audit([(0.5, Fraction(1))]) is False

    def test_slack_shrinks_with_sample_size(self):
        auditor = make_auditor(reservoir=400)
        assert auditor.slack == 1.0
        auditor.observe_batch([Fraction(i) for i in range(400)])
        assert auditor.slack == pytest.approx(0.1)


class TestServiceIntegration:
    def run(self, coroutine):
        return asyncio.run(coroutine)

    def make_service(self, **audit) -> QuantileService:
        return QuantileService(
            engine_config=EngineConfig(summary="gk", epsilon=0.02, shards=2),
            config=ServiceConfig(port=0, **audit),
        )

    def test_service_feeds_auditor_and_exposes_metrics(self):
        async def scenario():
            service = self.make_service(audit_fraction=1.0, audit_seed=4)
            await service.start()
            try:
                async with QuantileClient("127.0.0.1", service.port) as client:
                    await client.insert(list(range(1, 501)))
                    for _ in range(5):
                        await client.query((0.25, 0.5, 0.75))
                    metrics = await client.fetch_metrics()
            finally:
                await service.stop()
            return service, metrics

        service, metrics = self.run(scenario())
        assert service.auditor.seen == 500
        registry = service.registry
        assert registry.get("service_audits_total").value == 5
        assert registry.get("service_rank_error_violations_total").value == 0
        assert "service_rank_error" in metrics
        assert "service_audits_total 5" in metrics
        assert "service_audit_shadow_items 500" in metrics
        # The summary-style quantile series from the PR's export extension.
        assert 'service_rank_error{quantile="0.99"}' in metrics

    def test_audit_fraction_zero_disables(self):
        async def scenario():
            service = self.make_service(audit_fraction=0.0)
            await service.start()
            try:
                async with QuantileClient("127.0.0.1", service.port) as client:
                    await client.insert([1, 2, 3])
                    await client.query((0.5,))
            finally:
                await service.stop()
            return service

        service = self.run(scenario())
        assert service.auditor.seen == 0
        assert service.registry.get("service_audits_total").value == 0
