"""Client behaviour: backoff schedule, retries, connection reuse."""

import asyncio

import pytest

from repro.engine import EngineConfig
from repro.errors import RequestFailed, ServiceUnavailable
from repro.service import (
    QuantileClient,
    QuantileService,
    ServiceConfig,
    backoff_schedule,
    protocol,
)


def make_service() -> QuantileService:
    return QuantileService(
        engine_config=EngineConfig(summary="gk", epsilon=0.05, shards=2),
        config=ServiceConfig(port=0),
    )


class TestBackoffSchedule:
    def test_deterministic_for_a_seed(self):
        assert backoff_schedule(5, seed=42) == backoff_schedule(5, seed=42)
        assert backoff_schedule(5, seed=42) != backoff_schedule(5, seed=43)

    def test_exponential_base_with_bounded_jitter(self):
        base, cap = 0.05, 2.0
        delays = backoff_schedule(8, base_s=base, cap_s=cap, seed=0)
        for attempt, delay in enumerate(delays):
            floor = min(cap, base * (2 ** attempt))
            assert floor <= delay <= 2 * floor

    def test_cap_limits_growth(self):
        delays = backoff_schedule(12, base_s=0.1, cap_s=0.4, seed=1)
        assert max(delays) <= 0.8  # cap + full jitter


class TestRetries:
    def test_connection_refused_exhausts_into_service_unavailable(self):
        async def scenario():
            # A port nothing listens on: bind-and-release an ephemeral one.
            server = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            client = QuantileClient(
                "127.0.0.1",
                port,
                max_retries=2,
                backoff_base_s=0.001,
                backoff_cap_s=0.002,
            )
            with pytest.raises(ServiceUnavailable, match="3 attempt"):
                await client.ping()
            return client.requests_sent, client.retries_used

        sent, retried = asyncio.run(scenario())
        assert sent == 3
        assert retried == 2

    def test_recovers_when_the_server_comes_back(self):
        async def scenario():
            service = make_service()
            await service.start()
            port = service.port
            client = QuantileClient(
                "127.0.0.1", port, max_retries=3, backoff_base_s=0.01
            )
            await client.insert([1, 2, 3])
            # Kill the connection under the client; the next call must
            # reconnect transparently and succeed.
            client._writer.close()
            pong = await client.ping()
            await client.aclose()
            await service.stop()
            return pong

        pong = asyncio.run(scenario())
        assert pong["n"] == 3

    def test_explicit_server_errors_are_not_retried_by_default(self):
        async def scenario():
            service = make_service()
            await service.start()
            client = QuantileClient("127.0.0.1", service.port, max_retries=3)
            with pytest.raises(RequestFailed) as excinfo:
                await client.query([0.5])  # empty -> explicit error
            sent = client.requests_sent
            await client.aclose()
            await service.stop()
            return excinfo.value.code, sent

        code, sent = asyncio.run(scenario())
        assert code == protocol.ERR_EMPTY
        assert sent == 1  # no blind retries of an explicit answer

    def test_retry_shed_retries_deadline_errors(self):
        async def scenario():
            service = make_service()
            await service.start()
            client = QuantileClient(
                "127.0.0.1",
                service.port,
                max_retries=2,
                backoff_base_s=0.001,
                retry_shed=True,
                deadline_ms=0,  # every attempt is born expired
            )
            await client.connect()
            with pytest.raises(ServiceUnavailable):
                await client.insert([1])
            sent = client.requests_sent
            await client.aclose()
            await service.stop()
            return sent

        assert asyncio.run(scenario()) == 3


class TestConnectionReuse:
    def test_many_requests_share_one_connection(self):
        async def scenario():
            service = make_service()
            await service.start()
            async with QuantileClient("127.0.0.1", service.port) as client:
                for batch in range(5):
                    await client.insert([batch])
                    await client.ping()
            gauge = service.registry.get("service_open_connections")
            # Wait for the server to observe the client's EOF.
            for _ in range(100):
                if gauge.value == 0:
                    break
                await asyncio.sleep(0.01)
            connections = gauge.value
            # One client connection served all ten requests.
            requests = service.registry.get(
                "service_requests_total", op="insert"
            ).value
            await service.stop()
            return connections, requests

        connections, requests = asyncio.run(scenario())
        assert requests == 5
        assert connections == 0
