"""The binary frame wire: codec, negotiation, recovery, cross-wire identity.

Covers the frame lane's contract end to end: the codec round-trips the
full int64/float64 range (property-tested), unframeable values are refused
at the source, malformed frames come back as stable error codes *without*
killing the connection, truncation at EOF closes cleanly, and — the
faithfulness guarantee — a workload driven over frames leaves the engine
in a state whose checkpoint core is byte-identical to the same workload
over NDJSON, answering queries identically.
"""

import asyncio
import json
import struct
from array import array
from fractions import Fraction
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig
from repro.errors import ServiceError
from repro.service import (
    QuantileClient,
    QuantileService,
    ServiceConfig,
    frames,
    protocol,
)

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


def run(coroutine):
    return asyncio.run(coroutine)


def make_service(lane: str = "items", **service_kwargs) -> QuantileService:
    return QuantileService(
        engine_config=EngineConfig(summary="gk", epsilon=0.02, shards=2, lane=lane),
        config=ServiceConfig(port=0, **service_kwargs),
    )


async def started(service: QuantileService) -> int:
    await service.start()
    return service.port


# -- the codec ---------------------------------------------------------------------


class TestCodec:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=INT64_MIN, max_value=INT64_MAX),
            min_size=1,
            max_size=64,
        )
    )
    def test_i64_round_trip(self, values):
        mode, payload = frames.pack_values(values)
        assert mode == frames.MODE_I64
        decoded = frames.decode_insert(
            frames.KIND_INSERT, mode, payload, max_values=len(values)
        )
        assert decoded.typecode == "q"
        assert decoded.tolist() == values

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, width=64),
            min_size=1,
            max_size=64,
        )
    )
    def test_f64_round_trip(self, values):
        mode, payload = frames.pack_values(values)
        assert mode == frames.MODE_F64
        decoded = frames.decode_insert(
            frames.KIND_INSERT, mode, payload, max_values=len(values)
        )
        assert decoded.typecode == "d"
        assert decoded.tolist() == values

    def test_int64_boundaries_stay_exact(self):
        values = [INT64_MIN, -1, 0, 1, INT64_MAX]
        mode, payload = frames.pack_values(values)
        assert mode == frames.MODE_I64
        decoded = frames.decode_insert(
            frames.KIND_INSERT, mode, payload, max_values=5
        )
        assert decoded.tolist() == values

    def test_unframeable_values_are_refused(self):
        # Every refusal keeps exactness: these ride the NDJSON line instead.
        assert frames.pack_values([INT64_MAX + 1]) is None
        assert frames.pack_values([INT64_MIN - 1]) is None
        assert frames.pack_values(["7"]) is None
        assert frames.pack_values([Fraction(1, 3)]) is None
        assert frames.pack_values([float("nan")]) is None
        assert frames.pack_values([2**63]) is None  # not exactly a float64
        assert frames.pack_values([]) is None

    def test_mixed_int_float_packs_as_f64(self):
        mode, payload = frames.pack_values([1, 2.5])
        assert mode == frames.MODE_F64
        decoded = frames.decode_insert(
            frames.KIND_INSERT, mode, payload, max_values=2
        )
        assert decoded.tolist() == [1.0, 2.5]

    def test_decode_insert_validates_structure(self):
        with pytest.raises(frames.FrameError):
            frames.decode_insert(frames.KIND_ACK, frames.MODE_I64, b"\0" * 8,
                                 max_values=10)
        with pytest.raises(frames.FrameError):
            frames.decode_insert(frames.KIND_INSERT, 0x7F, b"\0" * 8,
                                 max_values=10)
        with pytest.raises(frames.FrameError):
            frames.decode_insert(frames.KIND_INSERT, frames.MODE_I64, b"",
                                 max_values=10)
        with pytest.raises(frames.FrameError):  # not a multiple of 8
            frames.decode_insert(frames.KIND_INSERT, frames.MODE_I64, b"\0" * 9,
                                 max_values=10)
        with pytest.raises(frames.FrameError):  # over the per-frame cap
            frames.decode_insert(frames.KIND_INSERT, frames.MODE_I64, b"\0" * 16,
                                 max_values=1)

    def test_header_rejects_bad_magic_only(self):
        good = frames.HEADER.pack(frames.MAGIC, frames.KIND_INSERT,
                                  frames.MODE_I64, 7, 8)
        assert frames.decode_header(good) == (frames.KIND_INSERT,
                                              frames.MODE_I64, 7, 8)
        bad = frames.HEADER.pack(b"{Q", frames.KIND_INSERT, frames.MODE_I64, 7, 8)
        with pytest.raises(frames.FrameError):
            frames.decode_header(bad)

    def test_ack_and_error_frames_round_trip(self):
        ack = frames.encode_ack(0x1_0000_0002, 10, 100, 3)
        kind, mode, request_id, length = frames.decode_header(
            ack[: frames.HEADER_SIZE]
        )
        assert kind == frames.KIND_ACK and request_id == 2  # id is masked u32
        assert frames.ACK_BODY.unpack(ack[frames.HEADER_SIZE :]) == (10, 100, 3)

        error = frames.encode_error(None, protocol.ERR_BAD_FRAME, "nope")
        kind, _, request_id, _ = frames.decode_header(error[: frames.HEADER_SIZE])
        assert kind == frames.KIND_ERROR and request_id == frames.UNKNOWN_ID
        assert frames.decode_error(error[frames.HEADER_SIZE :]) == (
            protocol.ERR_BAD_FRAME,
            "nope",
        )


# -- negotiation -------------------------------------------------------------------


class TestNegotiation:
    def test_hello_grants_frames_when_enabled(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            try:
                async with QuantileClient(
                    "127.0.0.1", port, wire="frames"
                ) as client:
                    assert client.frames_active
                    acked = await client.insert_frame([1, 2, 3])
                    assert acked["items"] == 3 and acked["ok"]
            finally:
                await service.stop()

        run(scenario())

    def test_ndjson_only_server_degrades_client_silently(self):
        async def scenario():
            service = make_service(wire="ndjson")
            port = await started(service)
            try:
                async with QuantileClient(
                    "127.0.0.1", port, wire="frames"
                ) as client:
                    assert not client.frames_active
                    # insert still works — over the NDJSON line.
                    acked = await client.insert([1, 2, 3])
                    assert acked["items"] == 3
                    with pytest.raises(ServiceError):
                        await client.insert_frame([1, 2, 3])
            finally:
                await service.stop()

        run(scenario())


# -- the upgraded connection -------------------------------------------------------


async def upgraded_connection(port: int):
    """A raw (reader, writer) already hello-upgraded to the frame wire."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    hello = {"op": "hello", "id": 1, "wire": "frames"}
    writer.write((json.dumps(hello) + "\n").encode())
    await writer.drain()
    granted = json.loads(await reader.readline())
    assert granted["ok"] and granted["wire"] == "frames"
    return reader, writer


async def read_frame(reader):
    header = await reader.readexactly(frames.HEADER_SIZE)
    kind, mode, request_id, length = frames.decode_header(header)
    payload = await reader.readexactly(length)
    return kind, request_id, payload


class TestRecovery:
    def test_misaligned_payload_is_refused_and_connection_survives(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            try:
                reader, writer = await upgraded_connection(port)
                writer.write(
                    frames.HEADER.pack(
                        frames.MAGIC, frames.KIND_INSERT, frames.MODE_I64, 5, 9
                    )
                    + b"\0" * 9
                )
                await writer.drain()
                kind, request_id, payload = await read_frame(reader)
                assert kind == frames.KIND_ERROR and request_id == 5
                code, _ = frames.decode_error(payload)
                assert code == protocol.ERR_BAD_FRAME
                # The connection is still serving: a framed insert lands.
                writer.write(frames.encode_insert(6, [1, 2, 3]))
                await writer.drain()
                kind, request_id, payload = await read_frame(reader)
                assert kind == frames.KIND_ACK and request_id == 6
                items, n, _ = frames.ACK_BODY.unpack(payload)
                assert items == 3 and n == 3
                writer.close()
            finally:
                await service.stop()

        run(scenario())

    def test_unknown_kind_and_bad_magic_are_recoverable(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            try:
                reader, writer = await upgraded_connection(port)
                # Unknown kind: declared payload is drained, error answered.
                writer.write(
                    frames.HEADER.pack(frames.MAGIC, 0x7E, 0, 8, 16) + b"\0" * 16
                )
                await writer.drain()
                kind, request_id, payload = await read_frame(reader)
                assert kind == frames.KIND_ERROR and request_id == 8
                assert frames.decode_error(payload)[0] == protocol.ERR_BAD_FRAME
                # Bad magic starting with 0xF5: resyncs at the next newline.
                writer.write(b"\xf5garbage-not-a-frame\n")
                await writer.drain()
                kind, request_id, payload = await read_frame(reader)
                assert kind == frames.KIND_ERROR
                assert frames.decode_error(payload)[0] == protocol.ERR_BAD_FRAME
                # Still alive — and NDJSON lines still interleave.
                ping = {"op": "ping", "id": 2}
                writer.write((json.dumps(ping) + "\n").encode())
                await writer.drain()
                pong = json.loads(await reader.readline())
                assert pong["ok"]
                writer.close()
            finally:
                await service.stop()

        run(scenario())

    def test_oversized_declaration_errors_then_closes(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            try:
                reader, writer = await upgraded_connection(port)
                writer.write(
                    frames.HEADER.pack(
                        frames.MAGIC,
                        frames.KIND_INSERT,
                        frames.MODE_I64,
                        9,
                        frames.MAX_DRAIN_BYTES + 8,
                    )
                )
                await writer.drain()
                kind, request_id, payload = await read_frame(reader)
                assert kind == frames.KIND_ERROR and request_id == 9
                assert frames.decode_error(payload)[0] == protocol.ERR_BAD_FRAME
                assert await reader.read() == b""  # server closed
                writer.close()
            finally:
                await service.stop()

        run(scenario())

    def test_truncated_frame_at_eof_closes_cleanly(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            try:
                reader, writer = await upgraded_connection(port)
                complete = frames.encode_insert(3, [10, 20, 30])
                writer.write(complete[:-4])  # half a value, then EOF
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # The truncated batch was never applied.
                async with QuantileClient("127.0.0.1", port) as client:
                    stats = await client.stats()
                    assert stats["engine"]["items_ingested"] == 0
            finally:
                await service.stop()

        run(scenario())

    def test_non_finite_f64_frame_is_a_bad_value(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            try:
                reader, writer = await upgraded_connection(port)
                payload = struct.pack("<2d", 1.0, float("inf"))
                writer.write(
                    frames.HEADER.pack(
                        frames.MAGIC,
                        frames.KIND_INSERT,
                        frames.MODE_F64,
                        4,
                        len(payload),
                    )
                    + payload
                )
                await writer.drain()
                kind, request_id, body = await read_frame(reader)
                assert kind == frames.KIND_ERROR and request_id == 4
                assert frames.decode_error(body)[0] == protocol.ERR_BAD_VALUE
                writer.close()
            finally:
                await service.stop()

        run(scenario())

    def test_oversize_ndjson_line_reports_line_too_long(self):
        async def scenario():
            service = make_service(max_line_bytes=4096)
            port = await started(service)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                request = {"op": "insert", "id": 1,
                           "values": list(range(100000))}
                writer.write((json.dumps(request) + "\n").encode())
                await writer.drain()
                response = json.loads(await reader.readline())
                assert not response["ok"]
                assert response["error"]["code"] == protocol.ERR_LINE_TOO_LONG
                # The connection resynced at the newline and still serves.
                writer.write((json.dumps({"op": "ping", "id": 2}) + "\n").encode())
                await writer.drain()
                pong = json.loads(await reader.readline())
                assert pong["ok"] and pong["id"] == 2
                writer.close()
            finally:
                await service.stop()

        run(scenario())


# -- pipelining --------------------------------------------------------------------


class TestPipelining:
    def test_acks_come_back_fifo_and_read_your_writes_holds(self):
        async def scenario():
            service = make_service(lane="columnar")
            port = await started(service)
            try:
                async with QuantileClient(
                    "127.0.0.1", port, wire="frames", window=4
                ) as client:
                    batches = [[i * 10 + j for j in range(10)] for i in range(8)]
                    for batch in batches:
                        await client.pipeline_insert(batch)
                    results = await client.flush_inserts()
                    assert [r["items"] for r in results] == [10] * 8
                    assert client.pending_inserts == 0
                    # n grows monotonically in submission order.
                    ns = [r["n"] for r in results]
                    assert ns == sorted(ns) and ns[-1] == 80
                    # Read-your-writes: a query after the flush sees all 80.
                    answers = await client.query([0.5])
                    assert answers["n"] == 80
            finally:
                await service.stop()

        run(scenario())

    def test_unframeable_batch_falls_back_mid_pipeline(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            try:
                async with QuantileClient(
                    "127.0.0.1", port, wire="frames", window=4
                ) as client:
                    framed = await client.pipeline_insert([1, 2, 3])
                    assert framed
                    # An exact-rational batch ("1/3" on the wire) is not
                    # frameable: it awaits the exact NDJSON line (draining
                    # the window first) and lands in the completed list
                    # like any other ack.
                    framed = await client.pipeline_insert(["1/3"])
                    assert not framed
                    results = await client.flush_inserts()
                    assert [r["items"] for r in results] == [3, 1]
                    answers = await client.query([0.5])
                    assert answers["n"] == 4
            finally:
                await service.stop()

        run(scenario())


# -- cross-wire faithfulness -------------------------------------------------------


def checkpoint_core(path: Path) -> list[bytes]:
    """Every checkpoint line except the wall-clock telemetry record."""
    lines = []
    for line in path.read_bytes().splitlines():
        if line and json.loads(line).get("kind") != "telemetry":
            lines.append(line)
    return lines


class TestCrossWireIdentity:
    def test_frames_and_ndjson_leave_identical_engine_state(self, tmp_path):
        batches = [
            [seed * 977 + offset * 13 for offset in range(500)]
            for seed in range(12)
        ]
        phis = [0.1, 0.5, 0.9, 0.99]
        answers = {}
        checkpoints = {}

        async def drive(wire: str) -> None:
            path = tmp_path / f"{wire}.ckpt"
            service = make_service(
                lane="columnar", checkpoint_path=str(path), wire="both"
            )
            port = await started(service)
            try:
                async with QuantileClient(
                    "127.0.0.1", port, wire=wire
                ) as client:
                    assert client.frames_active == (wire == "frames")
                    for batch in batches:  # awaited: same flush boundaries
                        acked = await client.insert(batch)
                        assert acked["items"] == len(batch)
                    answers[wire] = await client.query(phis)
            finally:
                await service.stop()
            checkpoints[wire] = checkpoint_core(path)

        run(drive("ndjson"))
        run(drive("frames"))

        assert answers["ndjson"]["results"] == answers["frames"]["results"]
        assert checkpoints["ndjson"], "checkpoint core must not be empty"
        assert checkpoints["ndjson"] == checkpoints["frames"]

    def test_auditor_observes_array_batches_identically(self):
        from repro.obs.registry import MetricRegistry
        from repro.service.audit import AccuracyAuditor, AuditConfig

        values = list(range(1000))
        as_list = AccuracyAuditor(MetricRegistry(), 0.02, AuditConfig(seed=5))
        as_array = AccuracyAuditor(MetricRegistry(), 0.02, AuditConfig(seed=5))
        as_list.observe_batch(values)
        as_array.observe_batch(array("q", values))
        assert as_list.sample == as_array.sample
        assert as_list.seen == as_array.seen == 1000
