"""Backpressure primitives: deadlines and the bounded micro-batch queue."""

import asyncio

import pytest

from repro.service.limits import BoundedQueue, Deadline


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert not deadline.expired()
        assert deadline.remaining_s() == float("inf")

    def test_expires_on_the_monotonic_clock(self):
        clock = FakeClock()
        deadline = Deadline(250, clock=clock)
        assert not deadline.expired()
        clock.now += 0.249
        assert not deadline.expired()
        clock.now += 0.002
        assert deadline.expired()
        assert deadline.remaining_s() < 0

    def test_zero_deadline_is_born_expired(self):
        assert Deadline(0, clock=FakeClock()).expired()


class TestBoundedQueue:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_try_put_sheds_at_capacity(self):
        async def scenario():
            queue = BoundedQueue(2)
            assert queue.try_put("a")
            assert queue.try_put("b")
            assert not queue.try_put("c")  # full -> explicit shed
            assert queue.depth == 2
            return await queue.get_batch(max_items=10)

        assert asyncio.run(scenario()) == ["a", "b"]

    def test_get_batch_coalesces_up_to_max_items(self):
        async def scenario():
            queue = BoundedQueue(10)
            for index in range(5):
                queue.try_put(index)
            first = await queue.get_batch(max_items=3)
            second = await queue.get_batch(max_items=3)
            return first, second

        first, second = asyncio.run(scenario())
        assert first == [0, 1, 2]
        assert second == [3, 4]

    def test_get_batch_waits_for_work(self):
        async def scenario():
            queue = BoundedQueue(4)

            async def producer():
                await asyncio.sleep(0.01)
                queue.try_put("late")

            task = asyncio.create_task(producer())
            batch = await queue.get_batch(max_items=4)
            await task
            return batch

        assert asyncio.run(scenario()) == ["late"]

    def test_close_refuses_new_work_and_drains_to_none(self):
        async def scenario():
            queue = BoundedQueue(4)
            queue.try_put("pending")
            queue.close()
            assert not queue.try_put("rejected")
            final_batch = await queue.get_batch(max_items=4)
            after_drain = await queue.get_batch(max_items=4)
            again = await queue.get_batch(max_items=4)
            return final_batch, after_drain, again

        final_batch, after_drain, again = asyncio.run(scenario())
        assert final_batch == ["pending"]
        assert after_drain is None
        assert again is None

    def test_close_wakes_a_blocked_consumer(self):
        async def scenario():
            queue = BoundedQueue(4)

            async def closer():
                await asyncio.sleep(0.01)
                queue.close()

            task = asyncio.create_task(closer())
            batch = await queue.get_batch(max_items=4)
            await task
            return batch

        assert asyncio.run(scenario()) is None

    def test_close_is_idempotent(self):
        async def scenario():
            queue = BoundedQueue(1)
            queue.close()
            queue.close()
            return await queue.get_batch(max_items=1)

        assert asyncio.run(scenario()) is None

    def test_close_has_room_even_when_full(self):
        # The +1 sentinel slot: closing a full queue must not raise.
        async def scenario():
            queue = BoundedQueue(1)
            assert queue.try_put("a")
            queue.close()
            assert await queue.get_batch(max_items=5) == ["a"]
            return await queue.get_batch(max_items=5)

        assert asyncio.run(scenario()) is None

    def test_linger_grows_the_batch(self):
        async def scenario():
            queue = BoundedQueue(8)
            queue.try_put("first")

            async def trickle():
                await asyncio.sleep(0.005)
                queue.try_put("second")

            task = asyncio.create_task(trickle())
            batch = await queue.get_batch(max_items=8, linger_s=0.05)
            await task
            return batch

        assert asyncio.run(scenario()) == ["first", "second"]
