"""The NDJSON wire protocol: encoding, validation, error envelopes."""

import json

import pytest

from repro.errors import ProtocolError
from repro.service import protocol


class TestEncodingRoundTrip:
    def test_encode_line_is_one_json_line(self):
        line = protocol.encode_line({"id": 1, "op": "ping"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert json.loads(line) == {"id": 1, "op": "ping"}

    def test_decode_line_accepts_bytes_and_str(self):
        assert protocol.decode_line(b'{"id": 1}') == {"id": 1}
        assert protocol.decode_line('{"id": 1}') == {"id": 1}

    def test_request_record_round_trips(self):
        request = protocol.Request(
            id=7, op="insert", values=(1, "7/2"), deadline_ms=250.0
        )
        rebuilt = protocol.parse_request(
            protocol.decode_line(protocol.encode_line(request.to_record()))
        )
        assert rebuilt == request

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_line(b"hello\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_line(b"[1, 2]\n")

    def test_decode_rejects_oversize_line(self):
        big = b'{"pad": "' + b"x" * protocol.MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_line(big)


class TestRequestValidation:
    def test_requires_integer_id(self):
        with pytest.raises(ProtocolError, match="integer 'id'"):
            protocol.parse_request({"op": "ping"})
        with pytest.raises(ProtocolError, match="integer 'id'"):
            protocol.parse_request({"id": True, "op": "ping"})

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.parse_request({"id": 1, "op": "drop_tables"})

    def test_insert_requires_values(self):
        with pytest.raises(ProtocolError, match="values"):
            protocol.parse_request({"id": 1, "op": "insert"})
        with pytest.raises(ProtocolError, match="values"):
            protocol.parse_request({"id": 1, "op": "insert", "values": []})

    def test_insert_rejects_non_numeric_entries(self):
        with pytest.raises(ProtocolError, match="numbers or numeric strings"):
            protocol.parse_request(
                {"id": 1, "op": "insert", "values": [1, [2]]}
            )
        with pytest.raises(ProtocolError, match="numbers or numeric strings"):
            protocol.parse_request(
                {"id": 1, "op": "insert", "values": [True]}
            )

    def test_query_validates_phis(self):
        with pytest.raises(ProtocolError, match="phis"):
            protocol.parse_request({"id": 1, "op": "query"})
        with pytest.raises(ProtocolError, match=r"\[0, 1\]"):
            protocol.parse_request({"id": 1, "op": "query", "phis": [1.5]})
        with pytest.raises(ProtocolError, match=r"\[0, 1\]"):
            protocol.parse_request({"id": 1, "op": "query", "phis": ["0.5"]})

    def test_deadline_must_be_finite_non_negative(self):
        for bad in (-1, float("inf"), float("nan"), "100", True):
            with pytest.raises(ProtocolError, match="deadline_ms"):
                protocol.parse_request(
                    {"id": 1, "op": "ping", "deadline_ms": bad}
                )

    def test_zero_deadline_is_legal(self):
        request = protocol.parse_request(
            {"id": 1, "op": "ping", "deadline_ms": 0}
        )
        assert request.deadline_ms == 0

    def test_string_values_pass_through_unparsed(self):
        request = protocol.parse_request(
            {"id": 1, "op": "rank", "values": ["7/2", "0.125"]}
        )
        assert request.values == ("7/2", "0.125")


class TestResponses:
    def test_ok_response_echoes_id_and_fields(self):
        response = protocol.ok_response(9, n=42)
        assert response == {"id": 9, "ok": True, "n": 42}
        assert protocol.parse_response(response) is response

    def test_error_response_carries_registered_code(self):
        response = protocol.error_response(3, protocol.ERR_OVERLOADED, "full")
        assert response["error"]["code"] == "overloaded"
        assert protocol.parse_response(response) is response

    def test_error_response_rejects_unknown_code(self):
        with pytest.raises(ProtocolError, match="unknown error code"):
            protocol.error_response(3, "whoops", "message")

    def test_parse_response_rejects_malformed_envelopes(self):
        with pytest.raises(ProtocolError):
            protocol.parse_response({"ok": True})
        with pytest.raises(ProtocolError):
            protocol.parse_response({"id": 1, "ok": False})

    def test_every_shed_code_is_registered(self):
        for code in protocol.RETRYABLE_CODES:
            assert code in protocol.ERROR_CODES
