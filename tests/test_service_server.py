"""Loopback end-to-end tests for the asyncio quantile service.

Covers the acceptance criteria: >= 8 concurrent clients of mixed traffic
with every answered quantile within epsilon of the exact rank, explicit
shedding for expired deadlines and full queues, drain-before-close
shutdown, and /metrics output that parses as Prometheus text exposition
format 0.0.4.
"""

import asyncio
import re
from bisect import bisect_right
from fractions import Fraction

import pytest

from repro.engine import EngineConfig
from repro.errors import RequestFailed
from repro.service import (
    LoadConfig,
    QuantileClient,
    QuantileService,
    ServiceConfig,
    protocol,
    run_load,
)

EPSILON = 0.02


def make_service(**service_kwargs) -> QuantileService:
    return QuantileService(
        engine_config=EngineConfig(summary="gk", epsilon=EPSILON, shards=2),
        config=ServiceConfig(port=0, **service_kwargs),
    )


def run(coroutine):
    return asyncio.run(coroutine)


async def started(service: QuantileService) -> int:
    await service.start()
    return service.port


# -- Prometheus text exposition 0.0.4 ----------------------------------------------

_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" [-+]?([0-9.eE+-]+|[Ii]nf|[Nn]a[Nn])$"
)
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def assert_prometheus_004(text: str) -> dict:
    """Validate text exposition 0.0.4; return {family: type}."""
    families: dict[str, str] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            assert len(line.split(" ", 3)) >= 3
        elif line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ", 3)
            assert kind in _TYPES, f"unknown TYPE {kind!r}"
            assert family not in families, f"duplicate TYPE for {family}"
            families[family] = kind
        else:
            assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"
            name = re.split(r"[{ ]", line, 1)[0]
            base = re.sub(r"_(sum|count)$", "", name)
            assert name in families or base in families, (
                f"sample {name!r} has no preceding TYPE"
            )
    assert families, "no metric families rendered"
    return families


class TestBasicOperations:
    def test_insert_query_rank_round_trip(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            async with QuantileClient("127.0.0.1", port) as client:
                pong = await client.ping()
                assert pong["epoch"] == 0 and not pong["draining"]
                acked = await client.insert(list(range(1, 1001)))
                assert acked["items"] == 1000 and acked["n"] == 1000
                answer = await client.query([0.5])
                rank = await client.rank([250])
            await service.stop()
            return answer, rank

        answer, rank = run(scenario())
        served = Fraction(answer["results"][0]["value"])
        assert abs(int(served) - 500) <= EPSILON * 1000
        assert abs(rank["results"][0]["rank"] - 250) <= EPSILON * 1000

    def test_exact_rationals_survive_the_wire(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            async with QuantileClient("127.0.0.1", port) as client:
                await client.insert(
                    ["1/3"] * 10 + ["1/2"] * 80 + ["2/3"] * 10
                )
                answer = await client.query([0.5])
            await service.stop()
            return answer

        answer = run(scenario())
        assert Fraction(answer["results"][0]["value"]) == Fraction(1, 2)

    def test_query_before_any_insert_is_an_explicit_empty_error(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            async with QuantileClient("127.0.0.1", port) as client:
                with pytest.raises(RequestFailed) as excinfo:
                    await client.query([0.5])
            await service.stop()
            return excinfo.value.code

        assert run(scenario()) == protocol.ERR_EMPTY

    def test_malformed_values_answer_malformed_record_not_a_dropped_connection(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            codes = []
            async with QuantileClient("127.0.0.1", port) as client:
                for bad in (["abc"], ["1/0"]):
                    with pytest.raises(RequestFailed) as excinfo:
                        await client.insert(bad)
                    codes.append(excinfo.value.code)
                # The connection survives and the next request works.
                acked = await client.insert([1, 2, 3])
            await service.stop()
            return codes, acked

        codes, acked = run(scenario())
        assert codes == [
            protocol.ERR_MALFORMED_RECORD,
            protocol.ERR_MALFORMED_RECORD,
        ]
        assert acked["items"] == 3

    def test_malformed_json_line_answers_bad_request(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await service.stop()
            return protocol.decode_line(line)

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST


class TestDeadlinesAndShedding:
    def test_expired_deadline_is_shed_with_an_explicit_code(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            codes = []
            async with QuantileClient("127.0.0.1", port) as client:
                await client.insert([1, 2, 3])
                for call in (
                    client.insert([4], deadline_ms=0),
                    client.query([0.5], deadline_ms=0),
                ):
                    with pytest.raises(RequestFailed) as excinfo:
                        await call
                    codes.append(excinfo.value.code)
            shed = service.registry.get("service_shed_total", reason="deadline")
            await service.stop()
            return codes, shed.value

        codes, shed_count = run(scenario())
        assert codes == [protocol.ERR_DEADLINE, protocol.ERR_DEADLINE]
        assert shed_count >= 2

    def test_full_queue_sheds_with_overloaded(self):
        async def scenario():
            service = make_service(max_queue_jobs=2, drain_timeout_s=0.2)
            port = await started(service)

            # Wedge the consumer so admitted jobs stay queued.
            async def never_consume(*args, **kwargs):
                await asyncio.Event().wait()

            service._queue.get_batch = never_consume
            service._ingest_task.cancel()
            service._ingest_task = asyncio.create_task(service._ingest_loop())

            clients = [QuantileClient("127.0.0.1", port) for _ in range(3)]
            for client in clients:
                await client.connect()
            stuck = [
                asyncio.create_task(client.insert([index]))
                for index, client in enumerate(clients[:2])
            ]
            await asyncio.sleep(0.05)  # let both jobs be admitted
            with pytest.raises(RequestFailed) as excinfo:
                await clients[2].insert([99])
            shed = service.registry.get("service_shed_total", reason="queue_full")
            for task in stuck:
                task.cancel()
            for client in clients:
                await client.aclose()
            await service.stop()
            return excinfo.value.code, shed.value

        code, shed_count = run(scenario())
        assert code == protocol.ERR_OVERLOADED
        assert shed_count >= 1


class TestGracefulDrain:
    def test_drain_flushes_admitted_inserts_before_the_socket_closes(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            clients = [QuantileClient("127.0.0.1", port) for _ in range(4)]
            for client in clients:
                await client.connect()
            inserts = [
                asyncio.create_task(client.insert(list(range(i * 100, (i + 1) * 100))))
                for i, client in enumerate(clients)
            ]
            await asyncio.sleep(0)  # let the inserts hit the queue
            await service.stop()
            outcomes = await asyncio.gather(*inserts, return_exceptions=True)
            for client in clients:
                await client.aclose()
            return service, outcomes

        service, outcomes = run(scenario())
        acked = sum(
            outcome["items"]
            for outcome in outcomes
            if isinstance(outcome, dict)
        )
        explicit_errors = [
            outcome
            for outcome in outcomes
            if not isinstance(outcome, dict)
        ]
        # Every insert either made it into the engine or failed explicitly.
        for error in explicit_errors:
            assert isinstance(error, RequestFailed)
            assert error.code in protocol.RETRYABLE_CODES
        assert service.engine.items_ingested == acked
        assert service.snapshots.current().items == acked

    def test_inserts_after_drain_get_shutting_down(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            async with QuantileClient("127.0.0.1", port) as client:
                await client.insert([1, 2, 3])
                service._draining = True  # what stop() sets first
                with pytest.raises(RequestFailed) as excinfo:
                    await client.insert([4])
            service._draining = False
            await service.stop()
            return excinfo.value.code

        assert run(scenario()) == protocol.ERR_SHUTTING_DOWN

    def test_restored_engine_serves_immediately(self, tmp_path):
        checkpoint = tmp_path / "service.jsonl"

        async def first_life():
            service = make_service(checkpoint_path=str(checkpoint))
            port = await started(service)
            async with QuantileClient("127.0.0.1", port) as client:
                await client.insert(list(range(1, 2001)))
            await service.stop()

        async def second_life():
            from repro.engine import ShardedQuantileEngine

            engine = ShardedQuantileEngine.restore(checkpoint)
            service = QuantileService(engine=engine, config=ServiceConfig(port=0))
            port = await started(service)
            async with QuantileClient("127.0.0.1", port) as client:
                pong = await client.ping()
                answer = await client.query([0.5])
            await service.stop()
            return pong, answer

        run(first_life())
        pong, answer = run(second_life())
        assert pong["n"] == 2000
        assert abs(int(Fraction(answer["results"][0]["value"])) - 1000) <= (
            EPSILON * 2000
        )


class TestConcurrentAccuracy:
    """The acceptance loopback test: 8 concurrent clients, answers within eps."""

    def test_eight_concurrent_clients_mixed_traffic_within_epsilon(self):
        config = LoadConfig(
            clients=8,
            ops_per_client=25,
            insert_ratio=0.6,
            values_per_insert=80,
            deadline_ms=10_000,
            seed=11,
        )

        async def scenario():
            service = make_service()
            port = await started(service)
            report = await run_load("127.0.0.1", port, config)
            async with QuantileClient("127.0.0.1", port) as client:
                answers = await client.query(config.phis)
                sample_ranks = await client.rank([100_000, 500_000, 900_000])
                stats = await client.stats()
            await service.stop()
            return service, report, answers, sample_ranks, stats

        service, report, answers, sample_ranks, stats = run(scenario())

        # Mixed traffic actually happened, and nothing was silently dropped:
        # every op is either ok or an explicit, coded error.
        assert report.ops == 8 * 25
        assert report.ok + sum(report.errors.values()) == report.ops
        assert set(report.errors) <= set(protocol.ERROR_CODES)
        assert report.inserted, "the workload must have inserted data"
        assert service.engine.items_ingested == len(report.inserted)

        # Every answered quantile is within epsilon of the exact rank.
        assert report.max_rank_error(answers) <= EPSILON

        # Rank answers check out against ground truth too.
        ordered = sorted(Fraction(v) for v in report.inserted)
        n = len(ordered)
        for entry in sample_ranks["results"]:
            exact = bisect_right(ordered, Fraction(entry["value"]))
            assert abs(entry["rank"] - exact) <= EPSILON * n

        # Stats reflect the run.
        assert stats["engine"]["items_ingested"] == n
        assert stats["service"]["epoch"] >= 1


class TestMetricsEndpoint:
    def test_metrics_parses_as_prometheus_004(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            async with QuantileClient("127.0.0.1", port) as client:
                await client.insert(list(range(500)))
                await client.query([0.5])
                text = await client.fetch_metrics()
            await service.stop()
            return text

        text = run(scenario())
        families = assert_prometheus_004(text)
        assert families["service_requests_total"] == "counter"
        assert families["service_snapshot_epoch"] == "gauge"
        assert families["service_request_latency_ns"] == "summary"
        # The engine's telemetry rides along on the same page.
        assert "engine_latency_ns" in families
        assert 'op="insert"' in text and 'op="query"' in text

    def test_unknown_http_path_is_a_404(self):
        async def scenario():
            service = make_service()
            port = await started(service)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /nope HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            await service.stop()
            return raw

        raw = run(scenario())
        assert raw.startswith(b"HTTP/1.0 404")
