"""Epoch-swapped snapshots: immutability, isolation from live ingest."""

from fractions import Fraction

import pytest

from repro.engine import EngineConfig, ShardedQuantileEngine
from repro.errors import EmptySummaryError
from repro.service.snapshots import EMPTY_SNAPSHOT, SnapshotStore


def make_engine(shards: int = 2) -> ShardedQuantileEngine:
    return ShardedQuantileEngine(
        EngineConfig(summary="gk", epsilon=0.05, shards=shards)
    )


class TestEmptySnapshot:
    def test_store_starts_at_the_empty_epoch(self):
        store = SnapshotStore()
        assert store.current() is EMPTY_SNAPSHOT
        assert store.epoch == 0

    def test_empty_snapshot_refuses_queries_explicitly(self):
        with pytest.raises(EmptySummaryError, match="epoch 0"):
            EMPTY_SNAPSHOT.query(0.5)
        with pytest.raises(EmptySummaryError):
            EMPTY_SNAPSHOT.rank(Fraction(1))

    def test_publish_of_an_empty_engine_stays_empty(self):
        store = SnapshotStore()
        snapshot = store.publish(make_engine())
        assert snapshot is EMPTY_SNAPSHOT
        assert store.epoch == 0


class TestPublishing:
    def test_epochs_increase_per_publish(self):
        store = SnapshotStore()
        engine = make_engine()
        engine.ingest(range(100))
        first = store.publish(engine)
        engine.ingest(range(100, 200))
        second = store.publish(engine)
        assert (first.epoch, second.epoch) == (1, 2)
        assert (first.items, second.items) == (100, 200)

    def test_publish_without_growth_reuses_the_snapshot(self):
        store = SnapshotStore()
        engine = make_engine()
        engine.ingest(range(100))
        first = store.publish(engine)
        second = store.publish(engine)
        assert second is first

    def test_snapshot_answers_match_the_engine_at_publish_time(self):
        store = SnapshotStore()
        engine = make_engine()
        engine.ingest(range(1, 1001))
        snapshot = store.publish(engine)
        assert snapshot.query(0.5) == engine.query(0.5)
        assert snapshot.rank(Fraction(500)) == engine.rank(500)


class TestIsolation:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_old_snapshot_is_frozen_while_ingest_continues(self, shards):
        # The single-shard case is the trap: the merged summary aliases the
        # live shard unless publish() copies it.
        store = SnapshotStore()
        engine = make_engine(shards=shards)
        engine.ingest(range(1, 501))
        frozen = store.publish(engine)
        before = frozen.query(0.5)
        before_rank = frozen.rank(Fraction(100))
        engine.ingest(range(10_000, 20_000))
        assert frozen.query(0.5) == before
        assert frozen.rank(Fraction(100)) == before_rank
        assert frozen.items == 500

    def test_new_snapshot_sees_the_new_data(self):
        store = SnapshotStore()
        engine = make_engine()
        engine.ingest(range(1, 501))
        old = store.publish(engine)
        engine.ingest(range(10_000, 20_000))
        new = store.publish(engine)
        assert new.epoch == old.epoch + 1
        assert new.items == 10_500
        assert new.rank(Fraction(25_000)) == 10_500
        assert old.rank(Fraction(25_000)) == 500
