"""Sliding-window quantiles over mergeable GK blocks."""

import pytest

from repro.streams import random_stream
from repro.summaries.sliding import SlidingWindowQuantiles
from repro.universe import Universe, key_of


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowQuantiles(0.1, window=0)
        with pytest.raises(ValueError):
            SlidingWindowQuantiles(0.1, window=100, blocks=1)

    def test_registered(self):
        from repro.model.registry import create_summary

        summary = create_summary("sliding-gk", 0.1, window=100)
        assert summary.window == 100

    def test_effective_epsilon(self):
        summary = SlidingWindowQuantiles(0.05, window=1000, blocks=10)
        assert summary.effective_epsilon == pytest.approx(0.05 + 0.1)


class TestWindowSemantics:
    def test_window_size_caps_at_window(self, universe):
        summary = SlidingWindowQuantiles(0.1, window=50, blocks=5)
        summary.process_all(universe.items(range(30)))
        assert summary.window_size() == 30
        summary.process_all(universe.items(range(100, 170)))
        assert summary.window_size() == 50

    def test_expired_blocks_dropped(self, universe):
        summary = SlidingWindowQuantiles(0.1, window=40, blocks=4)
        summary.process_all(universe.items(range(200)))
        # Live blocks cover at most window + one block of slack.
        covered = sum(block.n for _, block in summary._live)
        assert covered <= 40 + summary._block_size

    def test_old_items_leave_the_answers(self, universe):
        # Values 0..99 then 1000..1099 with window 100: after the second
        # batch, queries must be drawn from the recent value range.
        summary = SlidingWindowQuantiles(0.1, window=100, blocks=5)
        summary.process_all(universe.items(range(100)))
        summary.process_all(universe.items(range(1000, 1100)))
        for phi in (0.25, 0.5, 0.9):
            answer = summary.query(phi)
            assert key_of(answer) >= 990  # only the straddling block may leak

    def test_accuracy_within_effective_epsilon(self):
        universe = Universe()
        window, epsilon = 500, 1 / 16
        summary = SlidingWindowQuantiles(epsilon, window=window, blocks=8)
        items = random_stream(universe, 2000, seed=3)
        summary.process_all(items)
        recent = sorted(items[-window:])
        budget = summary.effective_epsilon * window + summary._block_size
        for percent in (10, 50, 90):
            phi = percent / 100
            answer = summary.query(phi)
            # Rank of the answer within the true window content.
            rank = sum(1 for item in recent if item <= answer)
            target = phi * window
            assert abs(rank - target) <= budget

    def test_space_much_smaller_than_window(self):
        universe = Universe()
        summary = SlidingWindowQuantiles(1 / 16, window=4000, blocks=8)
        summary.process_all(random_stream(universe, 8000, seed=4))
        assert summary._item_count() < 4000 / 2

    def test_rank_estimate_monotone(self, universe):
        summary = SlidingWindowQuantiles(1 / 8, window=200, blocks=4)
        summary.process_all(universe.items(range(400)))
        probes = [universe.item(v) for v in range(150, 400, 40)]
        estimates = [summary.estimate_rank(p) for p in probes]
        assert all(a <= b for a, b in zip(estimates, estimates[1:]))

    def test_item_array_sorted(self, universe):
        summary = SlidingWindowQuantiles(1 / 8, window=100, blocks=4)
        summary.process_all(universe.items(range(250)))
        array = summary.item_array()
        assert all(a <= b for a, b in zip(array, array[1:]))


class TestQDigestDeletion:
    def test_delete_reverses_insert(self, universe):
        from repro.summaries.qdigest import QDigest

        digest = QDigest(0.25, universe_bits=6)
        items = universe.items([5, 9, 9, 13])
        digest.process_all(items)
        digest.delete(universe.item(9))
        assert digest.n == 3
        assert sum(digest._counts.values()) == 3

    def test_delete_after_compression_hits_ancestor(self, universe):
        from repro.summaries.qdigest import QDigest

        digest = QDigest(0.5, universe_bits=5)
        digest.process_all(universe.items(list(range(32)) * 4))
        digest.compress()
        before = sum(digest._counts.values())
        digest.delete(universe.item(7))
        assert sum(digest._counts.values()) == before - 1

    def test_delete_from_empty_raises(self, universe):
        from repro.summaries.qdigest import QDigest

        digest = QDigest(0.25, universe_bits=4)
        with pytest.raises(ValueError):
            digest.delete(universe.item(3))

    def test_turnstile_quantiles_track_survivors(self, universe):
        from repro.summaries.qdigest import QDigest

        digest = QDigest(1 / 8, universe_bits=8)
        items = universe.items(range(200))
        digest.process_all(items)
        for value in range(100):  # delete the lower half
            digest.delete(universe.item(value))
        answer = digest.query(0.5)
        assert key_of(answer) >= 130  # median of survivors ~ 150, eps slack
