"""Stateful property tests (hypothesis RuleBasedStateMachine)."""

from bisect import bisect_left, bisect_right, insort

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.containers import SortedItemList
from repro.streams import Stream
from repro.universe import Universe


class SortedListMachine(RuleBasedStateMachine):
    """SortedItemList vs a plain sorted list under interleaved operations."""

    def __init__(self):
        super().__init__()
        self.subject = SortedItemList(load=4)
        self.model: list[int] = []

    @rule(value=st.integers(min_value=-25, max_value=25))
    def add(self, value):
        self.subject.add(value)
        insort(self.model, value)

    @rule(value=st.integers(min_value=-25, max_value=25))
    def remove_if_present(self, value):
        if value in self.model:
            self.model.remove(value)
            self.subject.remove(value)

    @rule(probe=st.integers(min_value=-30, max_value=30))
    def check_bisect(self, probe):
        assert self.subject.bisect_left(probe) == bisect_left(self.model, probe)
        assert self.subject.bisect_right(probe) == bisect_right(self.model, probe)

    @invariant()
    def contents_match(self):
        assert list(self.subject) == self.model
        assert len(self.subject) == len(self.model)

    @invariant()
    def positional_access_matches(self):
        for position in range(0, len(self.model), max(1, len(self.model) // 5)):
            assert self.subject[position] == self.model[position]


TestSortedListMachine = SortedListMachine.TestCase
TestSortedListMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)


class StreamOracleMachine(RuleBasedStateMachine):
    """Stream rank/next/prev oracles vs a sorted reference."""

    def __init__(self):
        super().__init__()
        self.universe = Universe()
        self.stream = Stream()
        self.values: list[int] = []
        self.next_fresh = 0

    @rule()
    def append_fresh(self):
        value = self.next_fresh * 7 % 1009  # scrambled but distinct
        self.next_fresh += 1
        if value in self.values:
            return
        self.values.append(value)
        self.stream.append(self.universe.item(value))

    @invariant()
    def ranks_match_reference(self):
        ordered = sorted(self.values)
        for value in self.values[:: max(1, len(self.values) // 4)]:
            expected = ordered.index(value) + 1
            assert self.stream.rank(self.universe.item(value)) == expected

    @invariant()
    def min_max_match(self):
        if self.values:
            from repro.universe import key_of

            assert key_of(self.stream.min_item) == min(self.values)
            assert key_of(self.stream.max_item) == max(self.values)


TestStreamOracleMachine = StreamOracleMachine.TestCase
TestStreamOracleMachine.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
