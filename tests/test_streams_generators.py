"""Workload generators: lengths, orders, determinism."""

from repro.streams import (
    random_stream,
    reversed_stream,
    sorted_stream,
    zoomin_stream,
)
from repro.streams.generators import adversarial_order_stream
from repro.summaries.gk import GreenwaldKhanna
from repro.universe import key_of


class TestShapes:
    def test_sorted_stream(self, universe):
        items = sorted_stream(universe, 10)
        assert [key_of(i) for i in items] == list(range(1, 11))

    def test_reversed_stream(self, universe):
        items = reversed_stream(universe, 10)
        assert [key_of(i) for i in items] == list(range(10, 0, -1))

    def test_random_stream_is_permutation(self, universe):
        items = random_stream(universe, 100, seed=1)
        assert sorted(key_of(i) for i in items) == list(range(1, 101))

    def test_random_stream_deterministic_per_seed(self):
        from repro.universe import Universe

        first = [key_of(i) for i in random_stream(Universe(), 50, seed=9)]
        second = [key_of(i) for i in random_stream(Universe(), 50, seed=9)]
        third = [key_of(i) for i in random_stream(Universe(), 50, seed=10)]
        assert first == second
        assert first != third

    def test_zoomin_alternates_extremes(self, universe):
        items = zoomin_stream(universe, 6)
        assert [key_of(i) for i in items] == [1, 6, 2, 5, 3, 4]

    def test_zoomin_odd_length(self, universe):
        items = zoomin_stream(universe, 5)
        assert [key_of(i) for i in items] == [1, 5, 2, 4, 3]
        assert len(items) == 5

    def test_zoomin_is_permutation(self, universe):
        items = zoomin_stream(universe, 33)
        assert sorted(key_of(i) for i in items) == list(range(1, 34))


class TestAdversarialOrder:
    def test_length_matches_construction(self):
        items = adversarial_order_stream(GreenwaldKhanna, epsilon=1 / 8, k=3)
        assert len(items) == round((1 / (1 / 8)) * 2**3)

    def test_items_distinct(self):
        items = adversarial_order_stream(GreenwaldKhanna, epsilon=1 / 8, k=3)
        assert len({key_of(i) for i in items}) == len(items)
