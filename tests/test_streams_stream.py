"""Stream: rank/next/prev oracles and the restricted-rank convention."""

import pytest

from repro.streams import Stream
from repro.universe import NEG_INFINITY, OpenInterval, POS_INFINITY, key_of


@pytest.fixture
def stream(universe):
    s = Stream()
    s.extend(universe.items([30, 10, 50, 20, 40]))
    return s


class TestBasics:
    def test_length_and_iteration_in_arrival_order(self, stream):
        assert len(stream) == 5
        assert [key_of(i) for i in stream] == [30, 10, 50, 20, 40]

    def test_getitem_by_arrival_position(self, stream):
        assert key_of(stream[0]) == 30
        assert key_of(stream[4]) == 40

    def test_sorted_items(self, stream):
        assert [key_of(i) for i in stream.sorted_items()] == [10, 20, 30, 40, 50]

    def test_min_max(self, stream):
        assert key_of(stream.min_item) == 10
        assert key_of(stream.max_item) == 50

    def test_duplicate_rejected(self, universe):
        s = Stream()
        s.append(universe.item(1))
        with pytest.raises(ValueError, match="duplicate"):
            s.append(universe.item(1))

    def test_duplicates_allowed_when_opted_out(self, universe):
        s = Stream(require_distinct=False)
        s.append(universe.item(1))
        s.append(universe.item(1))
        assert len(s) == 2


class TestRankOracles:
    def test_rank_is_one_based_sorted_position(self, stream, universe):
        assert stream.rank(universe.item(10)) == 1
        assert stream.rank(universe.item(30)) == 3
        assert stream.rank(universe.item(50)) == 5

    def test_item_at_rank_inverts_rank(self, stream):
        for rank in range(1, 6):
            assert stream.rank(stream.item_at_rank(rank)) == rank

    def test_item_at_rank_bounds(self, stream):
        with pytest.raises(IndexError):
            stream.item_at_rank(0)
        with pytest.raises(IndexError):
            stream.item_at_rank(6)

    def test_count_less_with_items_and_sentinels(self, stream, universe):
        assert stream.count_less(universe.item(35)) == 3
        assert stream.count_less(NEG_INFINITY) == 0
        assert stream.count_less(POS_INFINITY) == 5

    def test_count_at_most(self, stream, universe):
        assert stream.count_at_most(universe.item(30)) == 3
        assert stream.count_at_most(universe.item(29)) == 2

    def test_next_prev(self, stream, universe):
        assert key_of(stream.next_item(universe.item(30))) == 40
        assert key_of(stream.prev_item(universe.item(30))) == 20

    def test_next_prev_between_values(self, stream, universe):
        assert key_of(stream.next_item(universe.item(31))) == 40
        assert key_of(stream.prev_item(universe.item(29))) == 20

    def test_next_of_max_raises(self, stream, universe):
        with pytest.raises(ValueError):
            stream.next_item(universe.item(50))

    def test_prev_of_min_raises(self, stream, universe):
        with pytest.raises(ValueError):
            stream.prev_item(universe.item(10))


class TestIntervalOracles:
    def test_count_in(self, stream, universe):
        interval = OpenInterval(universe.item(10), universe.item(50))
        assert stream.count_in(interval) == 3

    def test_count_in_unbounded(self, stream):
        assert stream.count_in(OpenInterval.unbounded()) == 5

    def test_items_in_excludes_boundaries(self, stream, universe):
        interval = OpenInterval(universe.item(10), universe.item(40))
        assert [key_of(i) for i in stream.items_in(interval)] == [20, 30]

    def test_rank_in_matches_figure_1_convention(self, universe):
        # Boundary lo has rank 1, twelve inside items ranks 2..13, hi rank 14.
        s = Stream()
        lo, hi = universe.item(0), universe.item(130)
        inside = universe.items(range(10, 130, 10))
        s.extend([lo, *inside, hi])
        interval = OpenInterval(lo, hi)
        assert s.rank_in(interval, lo) == 1
        assert s.rank_in(interval, inside[0]) == 2
        assert s.rank_in(interval, inside[4]) == 6
        assert s.rank_in(interval, inside[9]) == 11
        assert s.rank_in(interval, hi) == 14

    def test_rank_in_unbounded_equals_full_rank(self, stream, universe):
        interval = OpenInterval.unbounded()
        probe = universe.item(30)
        assert stream.rank_in(interval, probe) == stream.rank(probe)

    def test_rank_in_with_sentinel_lower_bound(self, stream, universe):
        interval = OpenInterval(NEG_INFINITY, universe.item(40))
        assert stream.rank_in(interval, universe.item(10)) == 1
        assert stream.rank_in(interval, universe.item(30)) == 3
