"""Biased quantile summary: relative-error guarantee and structure."""

from fractions import Fraction

import pytest

from repro.streams import Stream, random_stream, sorted_stream
from repro.summaries.biased import BiasedQuantileSummary
from repro.universe import Universe


def check_relative_error(summary, stream, slack=2):
    """Rank error at rank k must be at most eps * k (+ small slack)."""
    n = len(stream)
    eps = Fraction(summary.epsilon)
    targets = sorted({max(1, round(n * fraction)) for fraction in
                      (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0)})
    for target in targets:
        phi = Fraction(target, n)
        rank = stream.rank(summary.query(float(phi)))
        assert abs(rank - target) <= eps * target + slack, (
            f"rank {rank} vs target {target}: relative error exceeded"
        )


class TestRelativeGuarantee:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_streams(self, seed):
        universe = Universe()
        items = random_stream(universe, 3000, seed=seed)
        summary = BiasedQuantileSummary(1 / 10)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        check_relative_error(summary, stream)

    def test_sorted_stream(self):
        universe = Universe()
        items = sorted_stream(universe, 2000)
        summary = BiasedQuantileSummary(1 / 10)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        check_relative_error(summary, stream)

    def test_low_ranks_nearly_exact(self):
        universe = Universe()
        items = random_stream(universe, 5000, seed=4)
        summary = BiasedQuantileSummary(1 / 10)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        # Rank 10 with eps = 1/10 allows error 1 (+slack).
        rank = stream.rank(summary.query(10 / 5000))
        assert abs(rank - 10) <= 3


class TestStructure:
    def test_g_sums_to_n(self):
        universe = Universe()
        summary = BiasedQuantileSummary(1 / 8)
        summary.process_all(random_stream(universe, 999, seed=5))
        assert sum(entry.g for entry in summary._tuples) == 999

    def test_invariant_rank_adaptive(self):
        # Each tuple's uncertainty is bounded by the internal (eps/2)
        # allowance evaluated at its upper rank bound — the insertion rule
        # references the successor, hence rmax rather than rmin here.
        universe = Universe()
        summary = BiasedQuantileSummary(1 / 8)
        summary.process_all(random_stream(universe, 1500, seed=6))
        internal = Fraction(1, 8) / 2
        rmin = 0
        for entry in summary._tuples:
            rmin += entry.g
            rmax = rmin + entry.delta
            assert entry.g + entry.delta <= max(1, int(2 * internal * rmax)) + 1

    def test_stores_more_than_uniform_gk(self):
        from repro.summaries.gk import GreenwaldKhanna

        universe = Universe()
        items = random_stream(universe, 8000, seed=7)
        biased = BiasedQuantileSummary(1 / 16)
        uniform = GreenwaldKhanna(1 / 16)
        for item in items:
            biased.process(item)
            uniform.process(item)
        assert len(biased.item_array()) > len(uniform.item_array())

    def test_space_sublinear(self):
        universe = Universe()
        summary = BiasedQuantileSummary(1 / 8)
        summary.process_all(random_stream(universe, 6000, seed=8))
        assert summary.max_item_count < 6000 / 3

    def test_item_array_sorted(self, universe):
        summary = BiasedQuantileSummary(1 / 8)
        summary.process_all(random_stream(Universe(), 700, seed=9))
        array = summary.item_array()
        assert all(a <= b for a, b in zip(array, array[1:]))

    def test_estimate_rank(self, universe):
        summary = BiasedQuantileSummary(1 / 10)
        summary.process_all(universe.items(range(1, 1001)))
        estimate = summary.estimate_rank(universe.item(100))
        assert abs(estimate - 100) <= 0.1 * 100 + 2
