"""Greenwald-Khanna: invariants, guarantees, bands, rank estimation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import Stream, random_stream, sorted_stream, zoomin_stream
from repro.summaries.gk import GreenwaldKhanna, GreenwaldKhannaGreedy, _band
from repro.universe import Universe

VARIANTS = [GreenwaldKhanna, GreenwaldKhannaGreedy]


def check_all_quantiles(summary, stream: Stream) -> None:
    """Assert the eps-guarantee at every distinguishable quantile."""
    n = len(stream)
    eps = Fraction(summary.epsilon)
    grid = max(4, round(2 / summary.epsilon))
    for j in range(grid + 1):
        phi = Fraction(j, grid)
        answer = summary.query(float(phi))
        rank = stream.rank(answer)
        target = max(1, min(n, int(phi * n)))
        assert abs(rank - target) <= eps * n + 1, (
            f"phi={phi}: rank {rank} vs target {target} beyond eps*n={eps * n}"
        )


@pytest.mark.parametrize("variant", VARIANTS)
class TestGuarantee:
    def test_random_order(self, variant):
        universe = Universe()
        items = random_stream(universe, 2000, seed=4)
        summary = variant(1 / 16)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        check_all_quantiles(summary, stream)

    def test_sorted_order(self, variant):
        universe = Universe()
        items = sorted_stream(universe, 1500)
        summary = variant(1 / 16)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        check_all_quantiles(summary, stream)

    def test_zoomin_order(self, variant):
        universe = Universe()
        items = zoomin_stream(universe, 1500)
        summary = variant(1 / 16)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        check_all_quantiles(summary, stream)

    def test_guarantee_holds_at_every_prefix(self, variant):
        universe = Universe()
        items = random_stream(universe, 400, seed=8)
        summary = variant(1 / 8)
        stream = Stream()
        for index, item in enumerate(items):
            summary.process(item)
            stream.append(item)
            if index % 37 == 0:
                check_all_quantiles(summary, stream)

    def test_tiny_streams(self, variant):
        universe = Universe()
        summary = variant(1 / 8)
        stream = Stream()
        for item in universe.items([5, 3, 9]):
            summary.process(item)
            stream.append(item)
        check_all_quantiles(summary, stream)

    def test_single_item(self, variant):
        universe = Universe()
        summary = variant(1 / 8)
        only = universe.item(42)
        summary.process(only)
        assert summary.query(0.0) == only
        assert summary.query(0.5) == only
        assert summary.query(1.0) == only


@pytest.mark.parametrize("variant", VARIANTS)
class TestInvariants:
    def test_g_delta_invariant(self, variant):
        universe = Universe()
        summary = variant(1 / 16)
        for item in random_stream(universe, 1000, seed=2):
            summary.process(item)
            threshold = summary._threshold()
            for entry in summary._tuples:
                assert entry.g + entry.delta <= max(1, threshold), (
                    f"invariant broken at n={summary.n}"
                )

    def test_g_sums_to_n(self, variant):
        universe = Universe()
        summary = variant(1 / 16)
        summary.process_all(random_stream(universe, 777, seed=3))
        assert sum(entry.g for entry in summary._tuples) == 777

    def test_min_and_max_always_stored(self, variant):
        universe = Universe()
        items = random_stream(universe, 500, seed=5)
        summary = variant(1 / 8)
        smallest = largest = None
        for item in items:
            summary.process(item)
            smallest = item if smallest is None or item < smallest else smallest
            largest = item if largest is None or item > largest else largest
            array = summary.item_array()
            assert array[0] == smallest
            assert array[-1] == largest

    def test_item_array_sorted(self, variant):
        universe = Universe()
        summary = variant(1 / 8)
        summary.process_all(random_stream(universe, 300, seed=6))
        array = summary.item_array()
        assert all(a <= b for a, b in zip(array, array[1:]))

    def test_space_stays_sublinear(self, variant):
        universe = Universe()
        summary = variant(1 / 16)
        summary.process_all(random_stream(universe, 4000, seed=7))
        # Far below N; loosely below the analysed bound too.
        assert summary.max_item_count < 4000 / 4
        assert summary.max_item_count <= (11 / (2 / 16)) * 12

    def test_duplicates_handled(self, variant):
        universe = Universe()
        summary = variant(1 / 8)
        values = [5, 1, 5, 3, 5, 2, 5, 4] * 30
        summary.process_all(universe.items(values))
        assert summary.n == 240
        summary.query(0.5)  # does not raise


class TestBands:
    def test_band_zero_at_threshold(self):
        assert _band(10, 10) == 0

    def test_band_one_just_below(self):
        # Band 1 holds deltas in (p - 2 - (p mod 2), p - 1 - (p mod 1)].
        p = 10
        assert _band(9, p) == 1

    def test_bands_non_decreasing_as_delta_shrinks(self):
        p = 64
        bands = [_band(delta, p) for delta in range(p, -1, -1)]
        assert all(b1 <= b2 for b1, b2 in zip(bands, bands[1:]))

    def test_band_of_excess_delta_is_zero(self):
        # Over-threshold deltas (possible after merging at tiny n) are
        # treated like the freshest tuples: band 0, never merged away.
        assert _band(11, 10) == 0

    def test_band_of_zero_delta_is_largest(self):
        p = 64
        assert _band(0, p) >= _band(32, p)


class TestRankEstimation:
    def test_estimates_within_eps_n(self):
        universe = Universe()
        items = random_stream(universe, 1000, seed=11)
        summary = GreenwaldKhanna(1 / 16)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        for value in range(0, 1001, 53):
            probe = universe.item(Fraction(value) + Fraction(1, 2))
            true_rank = stream.count_at_most(probe)
            estimate = summary.estimate_rank(probe)
            assert abs(estimate - true_rank) <= 1000 / 16 + 1

    def test_estimate_below_minimum_is_zero(self, universe):
        summary = GreenwaldKhanna(1 / 8)
        summary.process_all(universe.items(range(10, 20)))
        assert summary.estimate_rank(universe.item(0)) == 0

    def test_estimate_above_maximum_is_n(self, universe):
        summary = GreenwaldKhanna(1 / 8)
        summary.process_all(universe.items(range(10, 20)))
        assert summary.estimate_rank(universe.item(100)) == 10


class TestFingerprint:
    def test_fingerprint_is_item_free(self, universe):
        summary = GreenwaldKhanna(1 / 8)
        summary.process_all(universe.items(range(50)))
        def flatten(value):
            if isinstance(value, tuple):
                for part in value:
                    yield from flatten(part)
            else:
                yield value
        for leaf in flatten(summary.fingerprint()):
            assert isinstance(leaf, (int, str))

    def test_order_isomorphic_streams_same_fingerprint(self, universe):
        a, b = GreenwaldKhanna(1 / 8), GreenwaldKhanna(1 / 8)
        a.process_all(universe.items([3, 1, 4, 1.5, 9, 2.6, 5]))
        b.process_all(universe.items([30, 10, 40, 15, 90, 26, 50]))
        assert a.fingerprint() == b.fingerprint()


@settings(max_examples=30, deadline=None)
@given(
    permutation_seed=st.integers(min_value=0, max_value=10**6),
    length=st.integers(min_value=1, max_value=400),
    inverse_eps=st.sampled_from([4, 8, 16]),
)
def test_gk_guarantee_property(permutation_seed, length, inverse_eps):
    universe = Universe()
    items = random_stream(universe, length, seed=permutation_seed)
    summary = GreenwaldKhanna(Fraction(1, inverse_eps))
    stream = Stream()
    for item in items:
        summary.process(item)
        stream.append(item)
    check_all_quantiles(summary, stream)
