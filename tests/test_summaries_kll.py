"""KLL sketch: weight conservation, seeded determinism, error behaviour."""

import pytest

from repro.streams import Stream, random_stream
from repro.summaries.kll import KLL, kll_k_for
from repro.universe import Universe


class TestStructure:
    def test_weights_conserved(self):
        universe = Universe()
        sketch = KLL(1 / 16, seed=0)
        sketch.process_all(random_stream(universe, 3001, seed=1))
        total = sum(weight for _, weight in sketch._weighted_items())
        assert total == 3001

    def test_space_well_below_n(self):
        universe = Universe()
        sketch = KLL(1 / 16, seed=0)
        sketch.process_all(random_stream(universe, 20_000, seed=2))
        assert sketch.max_item_count < 2000

    def test_compactors_stack_up(self):
        universe = Universe()
        sketch = KLL(1 / 8, seed=0)
        sketch.process_all(random_stream(universe, 5000, seed=3))
        assert len(sketch._compactors) >= 4

    def test_item_array_sorted(self):
        universe = Universe()
        sketch = KLL(1 / 8, seed=0)
        sketch.process_all(random_stream(universe, 1000, seed=4))
        array = sketch.item_array()
        assert all(a <= b for a, b in zip(array, array[1:]))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KLL(0.1, k=1)

    def test_k_for_guarantee_monotone_in_delta(self):
        assert kll_k_for(0.01, 1e-12) > kll_k_for(0.01, 1e-2)

    def test_k_for_guarantee_validates_delta(self):
        with pytest.raises(ValueError):
            kll_k_for(0.01, 0)
        with pytest.raises(ValueError):
            kll_k_for(0.01, 1.5)


class TestDeterminism:
    def test_same_seed_same_behaviour(self):
        results = []
        for _ in range(2):
            universe = Universe()
            sketch = KLL(1 / 16, seed=99)
            sketch.process_all(random_stream(universe, 2000, seed=5))
            results.append(sketch.fingerprint())
        assert results[0] == results[1]

    def test_order_isomorphic_streams_indistinguishable(self, universe):
        a = KLL(1 / 8, seed=7)
        b = KLL(1 / 8, seed=7)
        a.process_all(universe.items(range(500)))
        b.process_all(universe.items(range(10_000, 10_500)))
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_can_differ(self):
        fingerprints = set()
        for seed in range(4):
            universe = Universe()
            sketch = KLL(1 / 16, seed=seed)
            sketch.process_all(random_stream(universe, 2000, seed=5))
            fingerprints.add(sketch.fingerprint())
        assert len(fingerprints) > 1


class TestAccuracy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_error_within_guarantee_for_sized_sketch(self, seed):
        universe = Universe()
        items = random_stream(universe, 4000, seed=seed)
        sketch = KLL(1 / 16, delta=1e-4, seed=seed)
        stream = Stream()
        for item in items:
            sketch.process(item)
            stream.append(item)
        n = len(stream)
        for percent in range(0, 101, 5):
            phi = percent / 100
            rank = stream.rank(sketch.query(phi))
            target = max(1, min(n, round(phi * n)))
            assert abs(rank - target) <= n / 16 + 1

    def test_estimate_rank_reasonable(self):
        universe = Universe()
        items = random_stream(universe, 2000, seed=6)
        sketch = KLL(1 / 16, delta=1e-4, seed=0)
        stream = Stream()
        for item in items:
            sketch.process(item)
            stream.append(item)
        probe = universe.item(1000)
        assert abs(sketch.estimate_rank(probe) - 1000) <= 2000 / 16 + 1
