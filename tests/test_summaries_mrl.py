"""MRL multilevel buffer summary: guarantee, weight conservation, collapse."""

from fractions import Fraction

import pytest

from repro.streams import Stream, random_stream, sorted_stream
from repro.summaries.mrl import MRL, mrl_buffer_size
from repro.universe import Universe


def check_quantiles(summary, stream, slack=1):
    n = len(stream)
    eps = Fraction(summary.epsilon)
    grid = max(4, round(2 / summary.epsilon))
    for j in range(grid + 1):
        phi = Fraction(j, grid)
        rank = stream.rank(summary.query(float(phi)))
        target = max(1, min(n, int(phi * n)))
        assert abs(rank - target) <= eps * n + slack


class TestGuarantee:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_streams(self, seed):
        universe = Universe()
        items = random_stream(universe, 3000, seed=seed)
        summary = MRL(1 / 16, n_hint=3000)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        check_quantiles(summary, stream)

    def test_sorted_stream(self):
        universe = Universe()
        items = sorted_stream(universe, 2500)
        summary = MRL(1 / 16, n_hint=2500)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        check_quantiles(summary, stream)

    def test_small_stream_is_exact(self, universe):
        # Below one buffer capacity nothing collapses: answers are exact.
        summary = MRL(1 / 4, n_hint=1000)
        stream = Stream()
        for item in universe.items([4, 2, 7, 1]):
            summary.process(item)
            stream.append(item)
        assert stream.rank(summary.query(0.5)) == 2


class TestStructure:
    def test_weights_sum_to_n(self):
        universe = Universe()
        summary = MRL(1 / 8, n_hint=2000)
        summary.process_all(random_stream(universe, 1999, seed=5))
        total = sum(weight for _, weight in summary._weighted_items())
        assert total == 1999

    def test_collapse_creates_levels(self):
        universe = Universe()
        summary = MRL(1 / 8, n_hint=4000)
        summary.process_all(random_stream(universe, 4000, seed=6))
        assert len(summary._buffers) >= 3

    def test_space_well_below_n(self):
        universe = Universe()
        summary = MRL(1 / 16, n_hint=5000)
        summary.process_all(random_stream(universe, 5000, seed=7))
        assert summary.max_item_count < 5000 / 2

    def test_buffer_size_formula_positive_and_monotone(self):
        small = mrl_buffer_size(1 / 8, 1000)
        large = mrl_buffer_size(1 / 8, 10**7)
        assert 0 < small <= large
        tighter = mrl_buffer_size(1 / 64, 1000)
        assert tighter > small

    def test_n_hint_validation(self):
        with pytest.raises(ValueError):
            mrl_buffer_size(0.1, 0)

    def test_item_array_sorted(self):
        universe = Universe()
        summary = MRL(1 / 8, n_hint=1000)
        summary.process_all(random_stream(universe, 1000, seed=8))
        array = summary.item_array()
        assert all(a <= b for a, b in zip(array, array[1:]))

    def test_fingerprints_match_for_isomorphic_streams(self, universe):
        a = MRL(1 / 4, n_hint=100)
        b = MRL(1 / 4, n_hint=100)
        a.process_all(universe.items(range(0, 100)))
        b.process_all(universe.items(range(1000, 1100)))
        assert a.fingerprint() == b.fingerprint()

    def test_estimate_rank_weighted(self, universe):
        summary = MRL(1 / 4, n_hint=100)
        summary.process_all(universe.items(range(1, 51)))
        estimate = summary.estimate_rank(universe.item(25))
        assert abs(estimate - 25) <= 50 / 4 + 1
