"""q-digest: the non-comparison-based contrast point."""

import pytest

from repro.streams import Stream, random_stream
from repro.summaries.qdigest import QDigest
from repro.universe import Universe, key_of


class TestBasics:
    def test_not_comparison_based_flag(self):
        assert QDigest.is_comparison_based is False

    def test_counts_conserved(self, universe):
        digest = QDigest(0.1, universe_bits=8)
        digest.process_all(universe.items(range(200)))
        assert sum(digest._counts.values()) == 200

    def test_universe_bounds_enforced(self, universe):
        digest = QDigest(0.1, universe_bits=4)
        with pytest.raises(ValueError):
            digest.process(universe.item(16))
        with pytest.raises(ValueError):
            digest.process(universe.item(-1))

    def test_integer_keys_required(self, universe):
        from fractions import Fraction

        digest = QDigest(0.1, universe_bits=4)
        with pytest.raises(ValueError, match="integer"):
            digest.process(universe.item(Fraction(1, 2)))

    def test_item_array_empty(self, universe):
        digest = QDigest(0.1, universe_bits=8)
        digest.process_all(universe.items(range(100)))
        assert digest.item_array() == []

    def test_universe_bits_validation(self):
        with pytest.raises(ValueError):
            QDigest(0.1, universe_bits=0)


class TestAccuracy:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_quantile_error_within_eps(self, seed):
        universe = Universe()
        epsilon = 1 / 16
        length = 4000
        items = random_stream(universe, length, seed=seed)
        digest = QDigest(epsilon, universe_bits=13)
        stream = Stream()
        for item in items:
            digest.process(item)
            stream.append(item)
        for percent in range(5, 100, 5):
            phi = percent / 100
            answer = digest.query(phi)
            # q-digest may answer with a value not in the stream: measure
            # its rank as the count of stream items at most the answer.
            rank = stream.count_at_most(answer)
            target = phi * length
            assert abs(rank - target) <= epsilon * length + 1

    def test_rank_estimates(self, universe):
        digest = QDigest(1 / 16, universe_bits=10)
        digest.process_all(universe.items(range(1, 1001)))
        estimate = digest.estimate_rank(universe.item(500))
        assert abs(estimate - 500) <= 1000 / 16 + 1


class TestCompression:
    def test_node_count_sublinear_in_n(self):
        universe = Universe()
        digest = QDigest(1 / 8, universe_bits=12)
        digest.process_all(random_stream(universe, 4000, seed=2))
        digest.compress()
        assert digest.node_count() < 4000 / 4

    def test_node_count_independent_of_n(self):
        # The property that lets q-digest escape the comparison-based lower
        # bound: space O((1/eps) log |U|), no N dependence.
        counts = []
        for length in (1000, 4000):
            universe = Universe()
            digest = QDigest(1 / 8, universe_bits=10)
            values = [value % 1000 for value in range(length)]
            digest.process_all(
                Universe().items(values)
            )
            digest.compress()
            counts.append(digest.node_count())
        assert counts[1] < counts[0] * 2.5

    def test_query_may_return_unseen_value(self, universe):
        digest = QDigest(1 / 2, universe_bits=8)
        digest.process_all(universe.items([0, 255] * 50))
        answer = digest.query(0.5)
        # The answer is a node upper bound, not necessarily a stream value.
        assert 0 <= key_of(answer) <= 255
