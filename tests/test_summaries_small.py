"""Exact, offline-optimal, sampling and capped summaries."""

import math

import pytest

from repro.streams import Stream, random_stream
from repro.summaries.capped import CappedSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.offline import OfflineOptimal
from repro.summaries.sampling import ReservoirSampling, reservoir_size_for
from repro.universe import Universe, key_of


class TestExact:
    def test_queries_are_exact(self, universe):
        summary = ExactSummary()
        stream = Stream()
        items = random_stream(universe, 500, seed=0)
        for item in items:
            summary.process(item)
            stream.append(item)
        for percent in range(0, 101, 10):
            phi = percent / 100
            rank = stream.rank(summary.query(phi))
            target = max(1, min(500, math.ceil(phi * 500)))
            assert rank == target

    def test_rank_estimates_exact(self, universe):
        summary = ExactSummary()
        summary.process_all(universe.items(range(1, 101)))
        assert summary.estimate_rank(universe.item(37)) == 37

    def test_stores_everything(self, universe):
        summary = ExactSummary()
        summary.process_all(universe.items(range(123)))
        assert summary.max_item_count == 123


class TestOfflineOptimal:
    def test_summary_size_is_half_inverse_eps(self, universe):
        summary = OfflineOptimal(1 / 20)
        summary.process_all(universe.items(range(1, 10_001)))
        assert summary.summary_size() <= math.ceil(20 / 2)

    def test_answers_within_eps(self, universe):
        epsilon = 1 / 20
        summary = OfflineOptimal(epsilon)
        stream = Stream()
        items = random_stream(universe, 2000, seed=1)
        for item in items:
            summary.process(item)
            stream.append(item)
        summary.finalize()
        n = 2000
        for percent in range(0, 101, 5):
            phi = percent / 100
            rank = stream.rank(summary.query(phi))
            target = max(1, min(n, math.ceil(phi * n)))
            assert abs(rank - target) <= epsilon * n + 1

    def test_cannot_process_after_finalize(self, universe):
        summary = OfflineOptimal(0.1)
        summary.process(universe.item(1))
        summary.finalize()
        with pytest.raises(RuntimeError):
            summary.process(universe.item(2))

    def test_finalize_idempotent(self, universe):
        summary = OfflineOptimal(0.1)
        summary.process_all(universe.items(range(100)))
        summary.finalize()
        size = summary.summary_size()
        summary.finalize()
        assert summary.summary_size() == size

    def test_rank_estimates_after_finalize(self, universe):
        summary = OfflineOptimal(1 / 10)
        summary.process_all(universe.items(range(1, 101)))
        estimate = summary.estimate_rank(universe.item(50))
        assert abs(estimate - 50) <= 10 + 1


class TestSampling:
    def test_reservoir_never_exceeds_m(self, universe):
        sampler = ReservoirSampling(0.1, m=32, seed=0)
        sampler.process_all(universe.items(range(1000)))
        assert sampler.max_item_count == 32

    def test_reservoir_holds_prefix_before_filling(self, universe):
        sampler = ReservoirSampling(0.1, m=10, seed=0)
        sampler.process_all(universe.items(range(5)))
        assert sorted(key_of(i) for i in sampler.item_array()) == list(range(5))

    def test_size_formula(self):
        assert reservoir_size_for(0.1) < reservoir_size_for(0.01)
        with pytest.raises(ValueError):
            reservoir_size_for(0.1, delta=0)

    def test_deterministic_per_seed(self, universe):
        first = ReservoirSampling(0.1, m=16, seed=5)
        second = ReservoirSampling(0.1, m=16, seed=5)
        items = universe.items(range(500))
        first.process_all(items)
        second.process_all(items)
        assert first.fingerprint() == second.fingerprint()
        assert first.item_array() == second.item_array()

    def test_statistical_accuracy(self):
        universe = Universe()
        items = random_stream(universe, 5000, seed=2)
        sampler = ReservoirSampling(0.05, seed=0)
        stream = Stream()
        for item in items:
            sampler.process(item)
            stream.append(item)
        rank = stream.rank(sampler.query(0.5))
        assert abs(rank - 2500) <= 0.05 * 5000 + 1

    def test_rank_estimate_scales_to_n(self, universe):
        sampler = ReservoirSampling(0.1, m=100, seed=1)
        sampler.process_all(universe.items(range(1, 1001)))
        estimate = sampler.estimate_rank(universe.item(500))
        assert abs(estimate - 500) <= 150


class TestCapped:
    def test_budget_respected(self, universe):
        summary = CappedSummary(0.1, budget=12)
        summary.process_all(universe.items(range(500)))
        assert summary.max_item_count <= 12

    def test_minimum_budget_enforced(self):
        with pytest.raises(ValueError):
            CappedSummary(0.1, budget=2)

    def test_weights_sum_to_n(self, universe):
        summary = CappedSummary(0.1, budget=8)
        summary.process_all(universe.items(range(333)))
        assert sum(entry.g for entry in summary._entries) == 333

    def test_min_max_retained(self):
        universe = Universe()
        items = random_stream(universe, 400, seed=3)
        summary = CappedSummary(0.1, budget=6)
        summary.process_all(items)
        array = summary.item_array()
        assert key_of(array[0]) == 1
        assert key_of(array[-1]) == 400

    def test_accurate_when_budget_exceeds_stream(self, universe):
        summary = CappedSummary(0.1, budget=100)
        stream = Stream()
        for item in universe.items(range(1, 51)):
            summary.process(item)
            stream.append(item)
        assert stream.rank(summary.query(0.5)) == 25

    def test_deterministic(self, universe):
        items = list(range(200))
        a, b = CappedSummary(0.1, budget=9), CappedSummary(0.1, budget=9)
        a.process_all(universe.items(items))
        b.process_all(universe.items(items))
        assert a.fingerprint() == b.fingerprint()

    def test_rank_estimate_monotone(self, universe):
        summary = CappedSummary(0.1, budget=10)
        summary.process_all(universe.items(range(1, 301)))
        estimates = [
            summary.estimate_rank(universe.item(value)) for value in range(0, 301, 30)
        ]
        assert all(a <= b for a, b in zip(estimates, estimates[1:]))
