"""Count-Min sketch and dyadic turnstile quantiles."""

import pytest

from repro.sketches.countmin import CountMinSketch
from repro.streams import Stream, random_stream
from repro.summaries.turnstile import TurnstileQuantiles
from repro.universe import Universe, key_of


class TestCountMin:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=1)
        with pytest.raises(ValueError):
            CountMinSketch(width=8, depth=0)
        with pytest.raises(ValueError):
            CountMinSketch.for_guarantee(0)
        with pytest.raises(ValueError):
            CountMinSketch.for_guarantee(0.1, delta=0)

    def test_never_undercounts(self):
        sketch = CountMinSketch(width=32, depth=4, seed=1)
        import random

        rng = random.Random(2)
        truth: dict[int, int] = {}
        for _ in range(2000):
            key = rng.randrange(100)
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_overcount_within_guarantee(self):
        epsilon = 0.02
        sketch = CountMinSketch.for_guarantee(epsilon, delta=1e-4, seed=3)
        import random

        rng = random.Random(4)
        truth: dict[int, int] = {}
        for _ in range(5000):
            key = rng.randrange(500)
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) <= count + epsilon * 5000 + 1

    def test_deletions(self):
        sketch = CountMinSketch(width=64, depth=4, seed=5)
        for _ in range(10):
            sketch.update(7)
        for _ in range(4):
            sketch.update(7, -1)
        assert sketch.total == 6
        assert sketch.estimate(7) >= 6

    def test_deterministic_per_seed(self):
        a = CountMinSketch(width=16, depth=3, seed=9)
        b = CountMinSketch(width=16, depth=3, seed=9)
        for key in range(100):
            a.update(key % 13)
            b.update(key % 13)
        assert a._rows == b._rows

    def test_memory_counters(self):
        assert CountMinSketch(width=10, depth=3).memory_counters() == 30


class TestTurnstileQuantiles:
    def test_not_comparison_based(self):
        assert TurnstileQuantiles.is_comparison_based is False

    def test_quantiles_within_eps(self):
        universe = Universe()
        epsilon, n = 1 / 16, 3000
        items = random_stream(universe, n, seed=6)
        summary = TurnstileQuantiles(epsilon, universe_bits=12, seed=0)
        stream = Stream()
        for item in items:
            summary.process(item)
            stream.append(item)
        for percent in range(5, 100, 10):
            phi = percent / 100
            answer = summary.query(phi)
            rank = stream.count_at_most(answer)
            assert abs(rank - phi * n) <= epsilon * n + 1

    def test_rank_estimates(self, universe):
        summary = TurnstileQuantiles(1 / 16, universe_bits=10, seed=0)
        summary.process_all(universe.items(range(1, 1001)))
        estimate = summary.estimate_rank(universe.item(500))
        assert abs(estimate - 500) <= 1000 / 16 + 1

    def test_deletions_shift_quantiles(self, universe):
        summary = TurnstileQuantiles(1 / 8, universe_bits=9, seed=0)
        items = universe.items(range(400))
        summary.process_all(items)
        for value in range(200):  # remove the lower half
            summary.delete(universe.item(value))
        assert summary.n == 200
        median = key_of(summary.query(0.5))
        assert median >= 250  # survivors' median ~ 300, eps slack

    def test_delete_validation(self, universe):
        summary = TurnstileQuantiles(1 / 8, universe_bits=6)
        with pytest.raises(ValueError):
            summary.delete(universe.item(3))

    def test_universe_bounds_enforced(self, universe):
        summary = TurnstileQuantiles(1 / 8, universe_bits=4)
        with pytest.raises(ValueError):
            summary.process(universe.item(16))
        from fractions import Fraction

        with pytest.raises(ValueError):
            summary.process(universe.item(Fraction(1, 2)))

    def test_space_independent_of_n(self):
        counters = []
        for length in (500, 4000):
            universe = Universe()
            summary = TurnstileQuantiles(1 / 8, universe_bits=12, seed=0)
            summary.process_all(
                universe.items([value % 4096 for value in range(length)])
            )
            counters.append(summary.memory_counters())
        assert counters[0] == counters[1]

    def test_item_array_empty(self, universe):
        summary = TurnstileQuantiles(1 / 8, universe_bits=6)
        summary.process_all(universe.items(range(30)))
        assert summary.item_array() == []

    def test_rank_of_value_monotone(self, universe):
        summary = TurnstileQuantiles(1 / 8, universe_bits=8, seed=0)
        summary.process_all(universe.items(range(0, 256, 2)))
        ranks = [summary.rank_of_value(value) for value in range(0, 256, 16)]
        assert all(a <= b for a, b in zip(ranks, ranks[1:]))
