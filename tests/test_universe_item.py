"""Items: comparison semantics, forbidden operations, sentinels, counters."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ForbiddenItemOperation
from repro.universe import (
    ComparisonCounter,
    Item,
    NEG_INFINITY,
    POS_INFINITY,
    Universe,
    key_of,
)

fractions = st.fractions(min_value=-1000, max_value=1000, max_denominator=997)


def item(value) -> Item:
    return Item(Fraction(value))


class TestComparisons:
    def test_less_than(self):
        assert item(1) < item(2)
        assert not item(2) < item(1)
        assert not item(1) < item(1)

    def test_less_equal(self):
        assert item(1) <= item(1)
        assert item(1) <= item(2)
        assert not item(2) <= item(1)

    def test_greater_than(self):
        assert item(2) > item(1)
        assert not item(1) > item(2)

    def test_greater_equal(self):
        assert item(2) >= item(2)
        assert not item(1) >= item(2)

    def test_equality(self):
        assert item(5) == item(5)
        assert item(5) != item(6)

    def test_equality_with_other_types_is_not_implemented(self):
        # Items never silently equal plain numbers; Python's fallback to
        # identity then makes == evaluate to False.
        assert item(1).__eq__(1) is NotImplemented
        assert (item(1) == 1) is False

    def test_sorting_uses_comparisons(self):
        items = [item(3), item(1), item(2)]
        assert [key_of(i) for i in sorted(items)] == [1, 2, 3]

    @given(fractions, fractions)
    def test_total_order_antisymmetry(self, a, b):
        x, y = Item(a), Item(b)
        assert (x < y) == (y > x)
        assert (x <= y) == (y >= x)
        assert (x < y and y < x) is False

    @given(fractions, fractions, fractions)
    def test_total_order_transitivity(self, a, b, c):
        x, y, z = Item(a), Item(b), Item(c)
        if x < y and y < z:
            assert x < z

    @given(fractions, fractions)
    def test_trichotomy(self, a, b):
        x, y = Item(a), Item(b)
        assert sum([x < y, x == y, x > y]) == 1


class TestHashing:
    def test_equal_items_hash_equal(self):
        assert hash(item(7)) == hash(item(7))

    def test_items_usable_in_sets(self):
        collection = {item(1), item(2), item(1)}
        assert len(collection) == 2

    def test_dict_lookup_by_equal_item(self):
        positions = {item(4): "here"}
        assert positions[item(4)] == "here"


class TestSentinels:
    def test_neg_infinity_below_everything(self):
        assert NEG_INFINITY < item(-10**9)
        assert item(-10**9) > NEG_INFINITY
        assert not NEG_INFINITY > item(0)

    def test_pos_infinity_above_everything(self):
        assert POS_INFINITY > item(10**9)
        assert item(10**9) < POS_INFINITY

    def test_sentinels_order_each_other(self):
        assert NEG_INFINITY < POS_INFINITY
        assert not POS_INFINITY < NEG_INFINITY

    def test_sentinel_not_less_than_itself(self):
        assert not NEG_INFINITY < NEG_INFINITY
        assert NEG_INFINITY <= NEG_INFINITY
        assert POS_INFINITY >= POS_INFINITY

    def test_item_never_equals_sentinel(self):
        assert not item(0) == POS_INFINITY
        assert not item(0) == NEG_INFINITY

    def test_sentinel_repr(self):
        assert repr(NEG_INFINITY) == "-inf"
        assert repr(POS_INFINITY) == "+inf"


class TestForbiddenOperations:
    @pytest.mark.parametrize(
        "operation",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a / b,
            lambda a, b: a // b,
            lambda a, b: 1 + a,
            lambda a, b: 2 * a,
        ],
    )
    def test_binary_arithmetic_raises(self, operation):
        with pytest.raises(ForbiddenItemOperation):
            operation(item(1), item(2))

    @pytest.mark.parametrize(
        "operation",
        [lambda a: -a, abs, int, float, bool, lambda a: list(range(10))[a]],
    )
    def test_unary_value_extraction_raises(self, operation):
        with pytest.raises(ForbiddenItemOperation):
            operation(item(1))

    def test_error_message_cites_the_model(self):
        with pytest.raises(ForbiddenItemOperation, match="Definition 2.1"):
            item(1) + item(2)


class TestCounting:
    def test_comparisons_counted(self):
        counter = ComparisonCounter()
        a = Item(Fraction(1), counter=counter)
        b = Item(Fraction(2), counter=counter)
        assert a < b
        assert b >= a
        assert counter.comparisons == 2
        assert counter.equality_tests == 0

    def test_equality_tests_counted_separately(self):
        counter = ComparisonCounter()
        a = Item(Fraction(1), counter=counter)
        b = Item(Fraction(1), counter=counter)
        assert a == b
        assert counter.equality_tests == 1
        assert counter.comparisons == 0

    def test_counter_on_either_side_suffices(self):
        counter = ComparisonCounter()
        counted = Item(Fraction(1), counter=counter)
        plain = Item(Fraction(0))
        assert plain < counted
        assert counter.comparisons == 1

    def test_total_and_reset(self):
        counter = ComparisonCounter()
        a = Item(Fraction(1), counter=counter)
        _ = a < Item(Fraction(2))
        _ = a == Item(Fraction(1))
        assert counter.total == 2
        counter.reset()
        assert counter.total == 0

    def test_universe_attaches_counter(self):
        counter = ComparisonCounter()
        universe = Universe(counter=counter)
        items = universe.items([1, 2, 3])
        sorted(items)
        assert counter.comparisons > 0


class TestCounterDelta:
    def test_delta_measures_only_the_block(self):
        counter = ComparisonCounter()
        a = Item(Fraction(1), counter=counter)
        b = Item(Fraction(2), counter=counter)
        _ = a < b  # outside: not part of the delta
        with counter.delta() as cost:
            _ = a < b
            _ = b < a
            _ = a == b
        assert cost.comparisons == 2
        assert cost.equality_tests == 1
        assert cost.total == 3
        assert counter.total == 4  # the counter itself keeps accumulating

    def test_delta_is_live_inside_and_frozen_after(self):
        counter = ComparisonCounter()
        a = Item(Fraction(1), counter=counter)
        with counter.delta() as cost:
            _ = a < Item(Fraction(2))
            assert cost.comparisons == 1
        _ = a < Item(Fraction(3))
        assert cost.comparisons == 1  # frozen at block exit

    def test_deltas_nest(self):
        counter = ComparisonCounter()
        a = Item(Fraction(1), counter=counter)
        with counter.delta() as outer:
            _ = a < Item(Fraction(2))
            with counter.delta() as inner:
                _ = a < Item(Fraction(3))
        assert inner.comparisons == 1
        assert outer.comparisons == 2

    def test_delta_freezes_on_exception(self):
        counter = ComparisonCounter()
        a = Item(Fraction(1), counter=counter)
        with pytest.raises(RuntimeError):
            with counter.delta() as cost:
                _ = a < Item(Fraction(2))
                raise RuntimeError("boom")
        _ = a < Item(Fraction(3))
        assert cost.comparisons == 1


class TestRepr:
    def test_repr_shows_key(self):
        assert "3" in repr(item(3))

    def test_repr_prefers_label(self):
        labelled = Item(Fraction(3), label="a7")
        assert "a7" in repr(labelled)
