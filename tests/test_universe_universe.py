"""Universe: drawing fresh items, intervals, continuity."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.universe import (
    Item,
    NEG_INFINITY,
    OpenInterval,
    POS_INFINITY,
    Universe,
    key_of,
)


class TestItemCreation:
    def test_item_from_int(self, universe):
        assert key_of(universe.item(5)) == Fraction(5)

    def test_item_from_fraction(self, universe):
        assert key_of(universe.item(Fraction(1, 3))) == Fraction(1, 3)

    def test_items_batch_preserves_order_of_values(self, universe):
        items = universe.items([3, 1, 2])
        assert [key_of(i) for i in items] == [3, 1, 2]

    def test_items_created_counter(self, universe):
        universe.items([1, 2, 3])
        universe.item(4)
        assert universe.items_created == 4

    def test_label_attached(self, universe):
        assert universe.item(1, label="x").label == "x"


class TestBetween:
    def test_between_finite_bounds(self, universe):
        lo, hi = universe.item(0), universe.item(1)
        middle = universe.between(OpenInterval(lo, hi))
        assert lo < middle < hi

    def test_between_unbounded(self, universe):
        middle = universe.between(OpenInterval.unbounded())
        assert isinstance(middle, Item)

    def test_between_half_unbounded_low(self, universe):
        hi = universe.item(0)
        middle = universe.between(OpenInterval(NEG_INFINITY, hi))
        assert middle < hi

    def test_between_half_unbounded_high(self, universe):
        lo = universe.item(0)
        middle = universe.between(OpenInterval(lo, POS_INFINITY))
        assert middle > lo

    def test_between_is_exact_midpoint(self, universe):
        lo, hi = universe.item(0), universe.item(1)
        middle = universe.between(OpenInterval(lo, hi))
        assert key_of(middle) == Fraction(1, 2)

    @given(
        st.fractions(min_value=-100, max_value=100, max_denominator=64),
        st.fractions(min_value=-100, max_value=100, max_denominator=64),
    )
    def test_between_always_strictly_inside(self, a, b):
        if a == b:
            return
        lo, hi = sorted([a, b])
        universe = Universe()
        interval = OpenInterval(universe.item(lo), universe.item(hi))
        middle = universe.between(interval)
        assert interval.contains(middle)


class TestOrderedItems:
    def test_count(self, universe):
        interval = OpenInterval(universe.item(0), universe.item(1))
        assert len(universe.ordered_items(7, interval)) == 7

    def test_strictly_increasing(self, universe):
        interval = OpenInterval(universe.item(0), universe.item(1))
        items = universe.ordered_items(16, interval)
        assert all(a < b for a, b in zip(items, items[1:]))

    def test_all_inside_interval(self, universe):
        lo, hi = universe.item(3), universe.item(4)
        interval = OpenInterval(lo, hi)
        for drawn in universe.ordered_items(9, interval):
            assert interval.contains(drawn)

    def test_equally_spaced(self, universe):
        interval = OpenInterval(universe.item(0), universe.item(10))
        items = universe.ordered_items(4, interval)
        assert [key_of(i) for i in items] == [2, 4, 6, 8]

    def test_works_in_unbounded_interval(self, universe):
        items = universe.ordered_items(5, OpenInterval.unbounded())
        assert all(a < b for a, b in zip(items, items[1:]))

    def test_label_prefix(self, universe):
        interval = OpenInterval(universe.item(0), universe.item(1))
        items = universe.ordered_items(2, interval, label_prefix="pi")
        assert [i.label for i in items] == ["pi1", "pi2"]

    def test_zero_count_rejected(self, universe):
        interval = OpenInterval(universe.item(0), universe.item(1))
        with pytest.raises(ValueError):
            universe.ordered_items(0, interval)

    def test_nested_refinement_never_exhausts(self, universe):
        # The continuity assumption: refining 50 times still yields items.
        interval = OpenInterval.unbounded()
        for _ in range(50):
            a, b = universe.ordered_items(2, interval)
            interval = OpenInterval(a, b)
        assert universe.between(interval) is not None


class TestIntervalValidation:
    def test_empty_interval_rejected(self, universe):
        lo, hi = universe.item(1), universe.item(1)
        with pytest.raises(ValueError):
            OpenInterval(lo, hi)

    def test_inverted_interval_rejected(self, universe):
        with pytest.raises(ValueError):
            OpenInterval(universe.item(2), universe.item(1))

    def test_contains_excludes_endpoints(self, universe):
        lo, hi = universe.item(0), universe.item(2)
        interval = OpenInterval(lo, hi)
        assert not interval.contains(lo)
        assert not interval.contains(hi)
        assert interval.contains(universe.item(1))

    def test_unbounded_flags(self, universe):
        assert OpenInterval.unbounded().is_unbounded
        bounded = OpenInterval(universe.item(0), universe.item(1))
        assert not bounded.is_unbounded
        assert bounded.lo_is_item and bounded.hi_is_item

    def test_half_bounded_flags(self, universe):
        half = OpenInterval(universe.item(0), POS_INFINITY)
        assert half.lo_is_item and not half.hi_is_item
        assert not half.is_unbounded


class TestShapedCounter:
    def test_shared_counter_counts_across_items(self, counted_universe):
        universe, counter = counted_universe
        items = universe.items([5, 3, 4, 1, 2])
        sorted(items)
        assert counter.comparisons >= 4
