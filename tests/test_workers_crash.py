"""Crash injection against the shard-worker supervisor.

A worker SIGKILLed mid-ingest must be restarted from its last state
snapshot with the logged batches replayed — and because each shard is a
deterministic function of its routed subsequence, the recovered engine
must end bit-identical to an uncrashed serial run, not merely within
epsilon.  These tests shrink the snapshot cadence through
``REPRO_WORKER_SNAPSHOT_EVERY`` so both recovery paths (snapshot restore
and log replay) are exercised on small streams.
"""

import os
import signal
import time

import pytest

from repro.engine import EngineConfig, ShardedQuantileEngine

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _values(n, seed=19):
    import random

    rng = random.Random(seed)
    return [rng.randint(0, 10**6) for _ in range(n)]


@pytest.fixture
def tight_snapshots(monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_SNAPSHOT_EVERY", "4")


def _wait_for_death(pid, timeout=5.0):
    # The worker stays a zombie until the supervisor reaps it on restart,
    # so "dead" here means gone *or* zombie (state Z in /proc).
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(f"/proc/{pid}/stat") as stat:
                state = stat.read().rsplit(")", 1)[1].split()[0]
        except (FileNotFoundError, ProcessLookupError):
            return
        if state == "Z":
            return
        time.sleep(0.01)
    raise AssertionError(f"worker {pid} survived SIGKILL")


class TestCrashRecovery:
    def test_sigkill_mid_ingest_recovers_bit_identically(self, tight_snapshots):
        values = _values(12_000)
        serial = ShardedQuantileEngine(
            EngineConfig(summary="gk", epsilon=0.02, shards=4)
        )
        serial.ingest(values)

        config = EngineConfig(
            summary="gk", epsilon=0.02, shards=4,
            executor="processes", workers=2, batch_size=500,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(values[:6000])
            victim = engine.executor.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            _wait_for_death(victim)
            engine.ingest(values[6000:])

            assert engine.stats()["executor"]["restarts"] >= 1
            phis = [0.05, 0.25, 0.5, 0.75, 0.95]
            assert engine.quantiles(phis) == serial.quantiles(phis)
            probes = [values[0], values[123], values[-1]]
            assert engine.rank_many(probes) == serial.rank_many(probes)

    def test_recovered_answers_meet_epsilon(self, tight_snapshots):
        epsilon = 0.05
        values = _values(8000, seed=23)
        n = len(values)
        ordered = sorted(values)
        config = EngineConfig(
            summary="gk", epsilon=epsilon, shards=3,
            executor="processes", workers=3, batch_size=400,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(values[: n // 2])
            for victim in engine.executor.worker_pids()[:2]:
                os.kill(victim, signal.SIGKILL)
                _wait_for_death(victim)
            engine.ingest(values[n // 2 :])
            for phi in (0.1, 0.5, 0.9):
                answer = engine.query(phi)
                below = sum(1 for v in ordered if v < answer)
                at_most = sum(1 for v in ordered if v <= answer)
                assert (
                    below - epsilon * n - 1
                    <= phi * n
                    <= at_most + epsilon * n + 1
                )

    def test_restart_metrics_and_snapshots_are_counted(self, tight_snapshots):
        config = EngineConfig(
            summary="gk", epsilon=0.05, shards=2,
            executor="processes", workers=2, batch_size=250,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(_values(5000))
            engine.stats()  # drain worker state so counters are current
            registry = engine.telemetry.registry
            snapshots = sum(
                metric.value
                for metric in registry
                if metric.name == "worker_snapshots_total"
            )
            assert snapshots >= 1  # cadence 4 over 10 batches per worker

            victim = engine.executor.worker_pids()[1]
            os.kill(victim, signal.SIGKILL)
            _wait_for_death(victim)
            engine.ingest(_values(1000, seed=3))

            restarts = registry.get("worker_restarts_total", worker="1")
            assert restarts is not None and restarts.value >= 1
            report = engine.executor.health_check()
            assert all(entry["pid"] is not None for entry in report)

    def test_kill_during_health_check_restarts_cleanly(self):
        config = EngineConfig(
            summary="kll", epsilon=0.05, shards=2, seed=1,
            executor="processes", workers=2,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(_values(2000))
            before = engine.executor.worker_pids()
            for pid in before:
                os.kill(pid, signal.SIGKILL)
                _wait_for_death(pid)
            report = engine.executor.health_check()
            assert all(entry["restarted"] for entry in report)
            after = engine.executor.worker_pids()
            assert all(pid is not None for pid in after)
            assert set(after).isdisjoint(before)
            # The fleet keeps working after a full massacre.
            engine.ingest(_values(1000, seed=2))
            straight = ShardedQuantileEngine(
                EngineConfig(summary="kll", epsilon=0.05, shards=2, seed=1)
            )
            straight.ingest(_values(2000) + _values(1000, seed=2))
            assert engine.quantiles([0.25, 0.75]) == straight.quantiles(
                [0.25, 0.75]
            )
