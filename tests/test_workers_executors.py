"""The shard-worker subsystem: executor factory, codec, bit-identity.

The load-bearing property here is the determinism contract: a shard is a
deterministic function of the value subsequence routed to it, so the
``processes`` executor — for all its pipelining, codec encodings and
vectorised routing — must leave byte-identical shard state behind.  Every
test in this file is some projection of that claim: identical checkpoint
records, identical answers, identical routing buckets.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineConfig,
    ShardedQuantileEngine,
    create_executor,
    executor_kinds,
    read_checkpoint,
    route_batch,
)
from repro.engine.workers.ipc import (
    MODE_INTS,
    MODE_PAIRS,
    all_plain_ints,
    decode_values,
    encode_fractions,
    fast_int_buckets,
    route_int_batch,
    shard_of_int,
)
from repro.errors import EngineError


def _values(n, seed=7, bound=10**6):
    rng = random.Random(seed)
    return [rng.randint(0, bound) for _ in range(n)]


def _shard_records(path):
    return read_checkpoint(path)["shard_payloads"]


class TestExecutorFactory:
    def test_kinds_cover_the_config_choices(self):
        assert set(executor_kinds()) == {"serial", "thread", "process", "processes"}

    def test_unknown_kind_raises_engine_error(self):
        config = EngineConfig(summary="gk")
        config.executor = "gpu"
        with pytest.raises(EngineError, match="gpu"):
            create_executor(config)

    def test_serial_is_the_default(self):
        engine = ShardedQuantileEngine(EngineConfig(summary="gk"))
        assert engine.executor.kind == "serial"
        assert engine.executor.remote is False


class TestCodec:
    def test_int_bucket_ships_bare_numerators(self):
        mode, payload = encode_fractions([Fraction(3), Fraction(-7)])
        assert (mode, payload) == (MODE_INTS, [3, -7])
        assert decode_values(mode, payload) == [Fraction(3), Fraction(-7)]

    def test_mixed_bucket_ships_pairs(self):
        values = [Fraction(3), Fraction(1, 2)]
        mode, payload = encode_fractions(values)
        assert mode == MODE_PAIRS
        assert payload == [(3, 1), (1, 2)]
        assert decode_values(mode, payload) == values

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="encoding"):
            decode_values("utf-8", [1])

    def test_all_plain_ints_excludes_bool_and_float(self):
        assert all_plain_ints([1, 2, 3])
        assert not all_plain_ints([1, True])
        assert not all_plain_ints([1, 2.0])

    def test_int_routing_matches_fraction_routing(self):
        values = _values(500, bound=10**9) + [-5, 0, 2**63, 2**70]
        for count in (1, 3, 8):
            for value in values:
                assert shard_of_int(value, count) == (
                    route_batch([Fraction(value)], count, "hash", 0).index(
                        [Fraction(value)]
                    )
                )

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=-(2**70), max_value=2**70), max_size=200
        ),
        shards=st.integers(min_value=1, max_value=7),
        routing=st.sampled_from(["hash", "round-robin"]),
        already=st.integers(min_value=0, max_value=10_000),
    )
    def test_int_batch_routing_is_bit_identical(
        self, values, shards, routing, already
    ):
        buckets = route_int_batch(values, shards, routing, already)
        expected = route_batch(
            [Fraction(v) for v in values], shards, routing, already
        )
        assert [[Fraction(v) for v in b] for b in buckets] == expected

    def test_vectorised_buckets_match_the_reference(self):
        # Big enough to take the numpy path, with negatives and the full
        # int64 range in play; bools and int-valued floats are accepted
        # because their Fraction image is identical.
        rng = random.Random(5)
        values = [rng.randint(-(2**63), 2**63 - 1) for _ in range(3000)]
        values += [True, False, 7.0]
        for routing in ("hash", "round-robin"):
            fast = fast_int_buckets(values, 5, routing, 42)
            expected = route_batch(
                [Fraction(v) for v in values], 5, routing, 42
            )
            assert [[Fraction(v) for v in b] for b in fast] == expected

    def test_vectorised_buckets_reject_unfaithful_values(self):
        assert fast_int_buckets([1.5] * 3000, 3, "hash", 0) is None
        assert fast_int_buckets(["2"] * 3000, 3, "hash", 0) is None

    def test_huge_ints_fall_back_to_the_pure_python_path(self):
        values = [2**70 + i for i in range(2000)]
        fast = fast_int_buckets(values, 3, "hash", 0)
        expected = route_batch([Fraction(v) for v in values], 3, "hash", 0)
        assert [[Fraction(v) for v in b] for b in fast] == expected


class TestProcessPoolBitIdentity:
    @pytest.mark.parametrize("summary", ["gk", "kll"])
    @pytest.mark.parametrize("routing", ["hash", "round-robin"])
    def test_checkpoints_are_byte_identical_to_serial(
        self, tmp_path, summary, routing
    ):
        values = _values(4000)
        paths = {}
        for executor, workers in (("serial", 1), ("processes", 3)):
            config = EngineConfig(
                summary=summary, epsilon=0.05, shards=4, routing=routing,
                executor=executor, workers=workers, seed=3, batch_size=512,
            )
            with ShardedQuantileEngine(config) as engine:
                engine.ingest(values)
                path = tmp_path / f"{executor}.jsonl"
                engine.checkpoint(path)
                paths[executor] = path
        assert _shard_records(paths["serial"]) == _shard_records(
            paths["processes"]
        )

    def test_mixed_value_types_take_the_pairs_path_identically(self, tmp_path):
        values = []
        rng = random.Random(11)
        for _ in range(1500):
            values.append(rng.randint(0, 10**6))
            values.append(Fraction(rng.randint(0, 100), rng.randint(1, 7)))
            values.append(rng.random())
        paths = {}
        for executor in ("serial", "processes"):
            config = EngineConfig(
                summary="gk", epsilon=0.05, shards=3,
                executor=executor, workers=2, batch_size=700,
            )
            with ShardedQuantileEngine(config) as engine:
                engine.ingest(values)
                path = tmp_path / f"{executor}.jsonl"
                engine.checkpoint(path)
                paths[executor] = path
        assert _shard_records(paths["serial"]) == _shard_records(
            paths["processes"]
        )

    def test_queries_match_serial_between_ingests(self):
        values = _values(6000)
        serial = ShardedQuantileEngine(
            EngineConfig(summary="gk", shards=4, epsilon=0.02)
        )
        config = EngineConfig(
            summary="gk", shards=4, epsilon=0.02,
            executor="processes", workers=2,
        )
        with ShardedQuantileEngine(config) as pooled:
            serial.ingest(values[:3000])
            pooled.ingest(values[:3000])
            phis = [0.05, 0.25, 0.5, 0.75, 0.95]
            assert serial.quantiles(phis) == pooled.quantiles(phis)
            probes = [values[1], values[100], values[2999]]
            assert serial.rank_many(probes) == pooled.rank_many(probes)
            # A second ingest after the mid-run read must keep agreeing:
            # collected state flows back out to the workers' coordinator
            # copy without forking history.
            serial.ingest(values[3000:])
            pooled.ingest(values[3000:])
            assert serial.quantiles(phis) == pooled.quantiles(phis)
            assert serial.rank_many(probes) == pooled.rank_many(probes)

    def test_restore_round_trips_through_worker_state(self, tmp_path):
        values = _values(3000)
        config = EngineConfig(
            summary="kll", shards=3, seed=9,
            executor="processes", workers=2,
        )
        path = tmp_path / "ckpt.jsonl"
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(values[:2000])
            engine.checkpoint(path)
        with ShardedQuantileEngine.restore(path) as resumed:
            resumed.ingest(values[2000:])
            straight = ShardedQuantileEngine(
                EngineConfig(summary="kll", shards=3, seed=9)
            )
            straight.ingest(values)
            assert resumed.quantiles([0.1, 0.5, 0.9]) == straight.quantiles(
                [0.1, 0.5, 0.9]
            )

    @settings(max_examples=8, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=30, max_size=150
        ),
        shards=st.integers(min_value=1, max_value=4),
        routing=st.sampled_from(["hash", "round-robin"]),
    )
    def test_executor_axis_preserves_every_answer(self, values, shards, routing):
        answers = []
        for executor in ("serial", "processes"):
            config = EngineConfig(
                summary="gk", epsilon=0.1, shards=shards, routing=routing,
                executor=executor, workers=2, batch_size=32,
            )
            with ShardedQuantileEngine(config) as engine:
                engine.ingest(values)
                answers.append(
                    (
                        engine.quantiles([0.1, 0.5, 0.9]),
                        engine.rank_many(values[:5]),
                        [entry["items"] for entry in engine.stats()["shards"]],
                    )
                )
        assert answers[0] == answers[1]


class TestWorkerTelemetry:
    def test_worker_metrics_merge_on_drain(self):
        config = EngineConfig(
            summary="gk", shards=2, executor="processes", workers=2,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(_values(2000))
            engine.stats()  # drains worker state + telemetry deltas
            registry = engine.telemetry.registry
            applied = sum(
                metric.value
                for metric in registry
                if metric.name == "worker_items_total"
            )
            assert applied == 2000
            seconds = [
                metric
                for metric in registry
                if metric.name == "worker_batch_seconds"
            ]
            assert seconds and all(
                metric.observations > 0 for metric in seconds
            )

    def test_executor_stats_shape(self):
        config = EngineConfig(
            summary="gk", shards=4, executor="processes", workers=2,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(_values(500))
            description = engine.stats()["executor"]
            assert description["kind"] == "processes"
            assert description["workers"] == 2
            assert description["restarts"] == 0
            assert len(description["pids"]) == 2
            assert all(isinstance(pid, int) for pid in description["pids"])

    def test_health_check_reports_every_worker(self):
        config = EngineConfig(
            summary="gk", shards=3, executor="processes", workers=3,
        )
        with ShardedQuantileEngine(config) as engine:
            engine.ingest(_values(300))
            report = engine.executor.health_check()
            assert [entry["worker"] for entry in report] == [0, 1, 2]
            assert all(entry["restarted"] is False for entry in report)
            assert sorted(
                index
                for entry in report
                for index in entry["shards"]
            ) == [0, 1, 2]
